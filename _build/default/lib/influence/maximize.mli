(** Influence maximisation (Kempe, Kleinberg & Tardos) — the consumer
    of the link strengths this paper computes securely.

    Once the host holds [p_(i,j)] for every arc, it selects the [k]
    seed users that maximise the expected cascade size under the
    independent-cascade model.  The greedy algorithm with Monte-Carlo
    spread estimation gives the classical [(1 - 1/e)]-approximation;
    {!celf} is the lazy-evaluation variant that exploits submodularity
    to skip most marginal-gain re-evaluations. *)

type model = {
  graph : Spe_graph.Digraph.t;
  probability : int -> int -> float;  (** Arc activation probability. *)
}

val of_strengths :
  Spe_graph.Digraph.t -> ((int * int) * float) list -> model
(** Build a model from the [(arc, strength)] list produced by the
    protocols; strengths are clamped to [[0, 1]]; missing arcs get
    probability zero. *)

val spread : Spe_rng.State.t -> model -> seeds:int list -> samples:int -> float
(** Monte-Carlo estimate of the expected number of activated nodes
    (including the seeds) over the given number of cascade samples. *)

val greedy : Spe_rng.State.t -> model -> k:int -> samples:int -> int list * float
(** Plain greedy: [k] rounds, re-estimating every candidate's marginal
    gain each round.  Returns the seed set (in pick order) and its
    estimated spread. *)

val celf : Spe_rng.State.t -> model -> k:int -> samples:int -> int list * float
(** CELF lazy greedy (Leskovec et al.): identical output distribution
    to {!greedy} up to Monte-Carlo noise, far fewer spread
    evaluations. *)

val evaluations : unit -> int
(** Number of spread evaluations performed by the last {!greedy} or
    {!celf} call — exposed so the ablation bench can show the CELF
    saving. *)

(** {2 Generic seed selection}

    The greedy machinery only needs a spread oracle, so it is exposed
    generically; {!Threshold} reuses it for the linear-threshold
    model. *)

val greedy_generic :
  n:int -> spread:(int list -> float) -> k:int -> int list * float
(** [greedy_generic ~n ~spread ~k] runs plain greedy over candidates
    [{0..n-1}].  Each call to [spread] is counted in {!evaluations}. *)

val celf_generic :
  n:int -> spread:(int list -> float) -> k:int -> int list * float
(** CELF lazy greedy over an arbitrary (submodular) spread oracle. *)
