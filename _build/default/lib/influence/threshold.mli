(** The Linear Threshold diffusion model (Kempe et al.) — the second
    classical model the influence-maximisation framework targets.

    Each arc [(u, v)] carries a weight [w_(u,v)] with
    [sum_u w_(u,v) <= 1] per node [v]; each node draws a threshold
    [theta_v ~ U[0, 1]] and activates once the weight of its active
    in-neighbours reaches it.  Spread is estimated by Monte-Carlo over
    threshold draws.  The securely learned link strengths feed this
    model after per-node normalisation ({!of_strengths}), giving the
    host a second seed-selection lens on the same protocol output. *)

type model = {
  graph : Spe_graph.Digraph.t;
  weight : int -> int -> float;
      (** Arc weight; in-weights must sum to at most 1 per node. *)
}

val of_strengths :
  Spe_graph.Digraph.t -> ((int * int) * float) list -> model
(** Build a model from Protocol 4 output: negative strengths clamp to
    0, and whenever a node's in-weights sum above 1 they are rescaled
    to sum to 1 (the standard normalisation). *)

val validate : model -> unit
(** Raises [Invalid_argument] if some node's in-weights exceed 1 beyond
    float tolerance. *)

val spread :
  Spe_rng.State.t -> model -> seeds:int list -> samples:int -> float
(** Monte-Carlo expected activation count (including seeds). *)

val greedy :
  Spe_rng.State.t -> model -> k:int -> samples:int -> int list * float

val celf :
  Spe_rng.State.t -> model -> k:int -> samples:int -> int list * float
(** Seed selection via {!Maximize.celf_generic} over this model's
    spread oracle. *)
