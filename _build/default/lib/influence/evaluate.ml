module Log = Spe_actionlog.Log
module Digraph = Spe_graph.Digraph
module State = Spe_rng.State

type split = { train : Log.t; test : Log.t }

let split_by_action st log ~train_fraction =
  if train_fraction <= 0. || train_fraction >= 1. then
    invalid_arg "Evaluate.split_by_action: train_fraction must be in (0, 1)";
  let assignment =
    Array.init (Log.num_actions log) (fun _ -> State.next_float st < train_fraction)
  in
  {
    train = Log.filter_actions log (fun a -> assignment.(a));
    test = Log.filter_actions log (fun a -> not assignment.(a));
  }

type score = { log_likelihood : float; brier : float; exposures : int }

let clamp p = Float.max 1e-9 (Float.min (1. -. 1e-9) p)

let score ~probability log graph ~h =
  if h < 1 then invalid_arg "Evaluate.score: window must be >= 1";
  if Log.num_users log <> Digraph.n graph then
    invalid_arg "Evaluate.score: log/graph user universe mismatch";
  let ll = ref 0. and brier = ref 0. and exposures = ref 0 in
  List.iter
    (fun action ->
      let recs = Log.by_action log action in
      let time = Hashtbl.create (List.length recs) in
      List.iter (fun (u, t) -> Hashtbl.replace time u t) recs;
      (* For each active user u and follower v: one exposure.  The
         outcome is "v activated within (t_u, t_u + h]"; skip followers
         already active at t_u (no attempt under IC semantics). *)
      List.iter
        (fun (u, tu) ->
          Array.iter
            (fun v ->
              let outcome =
                match Hashtbl.find_opt time v with
                | Some tv when tv <= tu -> None (* already active: no exposure *)
                | Some tv when tv - tu <= h -> Some true
                | Some _ -> Some false
                | None -> Some false
              in
              match outcome with
              | None -> ()
              | Some activated ->
                (* Predicted probability that v follows u's activation:
                   combine all of v's parents active in the window
                   before t_v... for scoring per-exposure we use the
                   single-arc prediction, the quantity the estimators
                   actually learn. *)
                let p = clamp (probability u v) in
                incr exposures;
                let y = if activated then 1. else 0. in
                ll := !ll +. ((y *. Float.log p) +. ((1. -. y) *. Float.log (1. -. p)));
                brier := !brier +. ((p -. y) *. (p -. y)))
            (Digraph.out_neighbors graph u))
        recs)
    (Log.actions_present log);
  if !exposures = 0 then invalid_arg "Evaluate.score: no exposures in the log";
  {
    log_likelihood = !ll /. float_of_int !exposures;
    brier = !brier /. float_of_int !exposures;
    exposures = !exposures;
  }
