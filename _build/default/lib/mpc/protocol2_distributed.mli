(** Protocol 2 on the message-passing {!Runtime}: Protocol 1's share
    exchange, then the masked wrap-around test through the third party,
    with every player an isolated state machine.

    Restrictions relative to {!Protocol2.run}: the third party must not
    be one of the sharing parties (use the host), since each runtime
    party runs a single program.  The jointly-generated secrets of
    players 1 and 2 (the masks and the batch permutation) are
    precomputed from a shared generator and captured by both closures —
    the same semi-honest joint-coin-flipping model as everywhere else
    (DESIGN.md).

    The tests assert result equality (integer share reconstruction) and
    wire-total agreement with the central {!Protocol2.run} up to byte
    rounding. *)

type result = { share1 : int array; share2 : int array }

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  result
