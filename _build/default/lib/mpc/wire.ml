type party = Host | Provider of int

let pp_party fmt = function
  | Host -> Format.pp_print_string fmt "H"
  | Provider k -> Format.fprintf fmt "P%d" (k + 1)

type stats = { rounds : int; messages : int; bits : int }

type message = { round : int; src : party; dst : party; bits : int }

type t = {
  mutable rounds : int;
  mutable in_round : bool;
  mutable messages : message list; (* reversed *)
  mutable message_count : int;
  mutable total_bits : int;
}

let create () =
  { rounds = 0; in_round = false; messages = []; message_count = 0; total_bits = 0 }

let round w f =
  if w.in_round then failwith "Wire.round: nested round";
  w.in_round <- true;
  w.rounds <- w.rounds + 1;
  Fun.protect ~finally:(fun () -> w.in_round <- false) f

let send w ~src ~dst ~bits =
  if not w.in_round then failwith "Wire.send: outside a round";
  if bits < 0 then invalid_arg "Wire.send: negative size";
  if src = dst then invalid_arg "Wire.send: self-send";
  w.messages <- { round = w.rounds; src; dst; bits } :: w.messages;
  w.message_count <- w.message_count + 1;
  w.total_bits <- w.total_bits + bits

let stats w = { rounds = w.rounds; messages = w.message_count; bits = w.total_bits }

let messages w = List.rev w.messages

let pp_transcript fmt w =
  let current_round = ref 0 in
  List.iter
    (fun m ->
      if m.round <> !current_round then begin
        current_round := m.round;
        Format.fprintf fmt "round %d:@." m.round
      end;
      Format.fprintf fmt "  %a -> %a  %d bits@." pp_party m.src pp_party m.dst m.bits)
    (messages w);
  let s = stats w in
  Format.fprintf fmt "totals: NR=%d NM=%d MS=%d bits@." s.rounds s.messages s.bits

let bits_for_int_mod modulus =
  if modulus <= 1 then invalid_arg "Wire.bits_for_int_mod: modulus must exceed 1";
  let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
  width (modulus - 1) 0

let float_bits = 64
