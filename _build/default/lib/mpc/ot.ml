module Nat = Spe_bignum.Nat
module Paillier = Spe_crypto.Paillier
module State = Spe_rng.State

type sender_view = { queries : Nat.t array; response_bits : int }

let wire_bits ~n ~key_bits =
  (* Public key (the modulus) + N query ciphertexts + 1 response, all
     modulo n^2, i.e. 2 * key_bits each. *)
  key_bits + ((n + 1) * 2 * key_bits)

let transfer st ~wire ~sender ~receiver ~key_bits ~messages ~choice =
  let n = Array.length messages in
  if n = 0 then invalid_arg "Ot.transfer: no messages";
  if choice < 0 || choice >= n then invalid_arg "Ot.transfer: choice out of range";
  Array.iter (fun m -> if m < 0 then invalid_arg "Ot.transfer: negative message") messages;
  let kp = Paillier.generate st ~bits:key_bits in
  let pk = kp.Paillier.public in
  let z = Paillier.ciphertext_bits pk in
  (* Round 1: the receiver publishes a fresh key. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:receiver ~dst:sender ~bits:(Nat.bit_length pk.Paillier.n));
  (* Round 2: the encrypted unit vector. *)
  let queries =
    Array.init n (fun i ->
        Paillier.encrypt st pk (if i = choice then Nat.one else Nat.zero))
  in
  Wire.round wire (fun () -> Wire.send wire ~src:receiver ~dst:sender ~bits:(n * z));
  (* The sender folds Enc(sum m_i e_i) homomorphically and
     re-randomises with a fresh Enc(0). *)
  let selected =
    Array.to_seq queries
    |> Seq.zip (Array.to_seq messages)
    |> Seq.fold_left
         (fun acc (m, q) -> Paillier.add pk acc (Paillier.mul_plain pk q (Nat.of_int m)))
         (Paillier.encrypt st pk Nat.zero)
  in
  (* Round 3: a single ciphertext back. *)
  Wire.round wire (fun () -> Wire.send wire ~src:sender ~dst:receiver ~bits:z);
  Nat.to_int_exn (Paillier.decrypt kp.Paillier.secret selected)
