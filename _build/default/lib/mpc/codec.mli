(** Byte-level message encoding.

    The wire statistics of Sec. 7.1 are only as credible as the sizes
    declared on the wire, so this module provides the actual encodings
    and the tests assert that every size formula used by the protocols
    (and hence by the Table 1/2 models) matches the length of a real
    encoded payload, rounded up to whole bits of the stated width.

    Encodings are deliberately plain: fixed-width big-endian residues
    for modular values, IEEE 754 doubles for reals, fixed-width
    naturals for ciphertexts. *)

val residue_bytes : modulus:int -> int
(** Bytes needed for one residue: [ceil(bits_for_int_mod modulus / 8)]. *)

val encode_residues : modulus:int -> int array -> bytes
(** Fixed-width big-endian encoding of a residue vector.  Raises
    [Invalid_argument] on out-of-range entries. *)

val decode_residues : modulus:int -> count:int -> bytes -> int array
(** Inverse; raises [Invalid_argument] on a length mismatch. *)

val encode_floats : float array -> bytes
(** 8 bytes per value, IEEE 754 binary64 big-endian. *)

val decode_floats : count:int -> bytes -> float array

val encode_nats : width_bits:int -> Spe_bignum.Nat.t array -> bytes
(** Each value in [ceil(width_bits / 8)] big-endian bytes — the
    ciphertext encoding ([width_bits] = the scheme's [z]).  Raises
    [Invalid_argument] if a value exceeds the width. *)

val decode_nats : width_bits:int -> count:int -> bytes -> Spe_bignum.Nat.t array

val encode_bitset : bool array -> bytes
(** One bit per flag, padded to a whole byte — the Protocol 2 verdict
    vector. *)

val decode_bitset : count:int -> bytes -> bool array
