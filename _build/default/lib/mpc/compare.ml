module Nat = Spe_bignum.Nat
module Paillier = Spe_crypto.Paillier
module Perm = Spe_rng.Perm
module State = Spe_rng.State

(* Integer encoding of a prefix of length len (bits taken from the
   most-significant end): 2^len + value.  Injective across lengths and
   disjoint from the dummy ranges below. *)
let encode_prefix ~bits ~len v = (1 lsl len) lor (v lsr (bits - len))

(* Dummies live above every valid encoding and in disjoint ranges per
   side, so they can never produce a spurious match. *)
let dummy_x st ~bits = (1 lsl (bits + 3)) lor State.next_bits st (bits + 2)
let dummy_y st ~bits = (1 lsl (bits + 4)) lor State.next_bits st (bits + 2)

let wire_bits ~bits ~key_bits = key_bits + (2 * bits * 2 * key_bits)

let greater_than st ~wire ~holder_x ~holder_y ~bits ~x ~y =
  if bits < 1 || bits > 40 then invalid_arg "Compare.greater_than: bits must be in [1, 40]";
  if x < 0 || y < 0 || x >= 1 lsl bits || y >= 1 lsl bits then
    invalid_arg "Compare.greater_than: inputs must fit the bit width";
  (* Primes must dominate both the encodings and the blinding factors
     so that r * (t0 - t1) can never vanish modulo N. *)
  let key_bits = max 96 (2 * (bits + 8)) in
  let kp = Paillier.generate st ~bits:key_bits in
  let pk = kp.Paillier.public in
  let z = Paillier.ciphertext_bits pk in
  (* Round 1: Y publishes a fresh key. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:holder_y ~dst:holder_x ~bits:(Nat.bit_length pk.Paillier.n));
  (* Round 2: Y's encrypted 0-encoding, one slot per bit position
     (most-significant first; position index p = 1..bits covers bit
     bits - p). *)
  let y_slots =
    Array.init bits (fun p ->
        let bit = bits - p - 1 in
        let value =
          if (y lsr bit) land 1 = 0 then
            (* Prefix above the bit, then a forced 1 at the bit. *)
            encode_prefix ~bits ~len:(p + 1) (y lor (1 lsl bit))
          else dummy_y st ~bits
        in
        Paillier.encrypt st pk (Nat.of_int value))
  in
  Wire.round wire (fun () -> Wire.send wire ~src:holder_y ~dst:holder_x ~bits:(bits * z));
  (* X blinds the per-position differences and shuffles. *)
  let responses =
    Array.init bits (fun p ->
        let bit = bits - p - 1 in
        let t1 =
          if (x lsr bit) land 1 = 1 then encode_prefix ~bits ~len:(p + 1) x
          else dummy_x st ~bits
        in
        let diff =
          Paillier.add pk y_slots.(p)
            (Paillier.encrypt st pk (Nat.sub pk.Paillier.n (Nat.of_int t1)))
        in
        let r = Nat.of_int (1 + State.next_bits st 30) in
        Paillier.mul_plain pk diff r)
  in
  let shuffled = Perm.permute_array (Perm.random st bits) responses in
  Wire.round wire (fun () -> Wire.send wire ~src:holder_x ~dst:holder_y ~bits:(bits * z));
  (* Y decrypts: a zero plaintext means the encodings intersect. *)
  Array.exists
    (fun c -> Nat.is_zero (Paillier.decrypt kp.Paillier.secret c))
    shuffled
