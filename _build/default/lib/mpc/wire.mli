(** The simulated wire: message accounting for the communication-cost
    evaluation (Sec. 7.1).

    The protocols run in-process, but every message a real deployment
    would send is declared on a wire value, tagged with its byte-exact
    size in bits.  The evaluation metrics of the paper fall out
    directly:
    - NR — number of communication rounds (a round is a stage in which
      some players send messages and the protocol can only proceed once
      all are delivered);
    - NM — total number of messages;
    - MS — total size in bits of all messages.

    Rounds are declared with {!round}; sends outside a round, or nested
    rounds, are programming errors and raise. *)

type party = Host | Provider of int
(** [Provider k] is the paper's P_(k+1) (zero-indexed). *)

val pp_party : Format.formatter -> party -> unit

type stats = { rounds : int; messages : int; bits : int }
(** The paper's (NR, NM, MS). *)

type message = { round : int; src : party; dst : party; bits : int }

type t

val create : unit -> t

val round : t -> (unit -> 'a) -> 'a
(** [round w f] opens a communication round, runs [f] (whose sends are
    attributed to this round), and closes it.  Raises [Failure] when
    nested. *)

val send : t -> src:party -> dst:party -> bits:int -> unit
(** Declare one message.  Raises [Failure] outside a round and
    [Invalid_argument] on a negative size or a self-send. *)

val stats : t -> stats

val messages : t -> message list
(** Full transcript in send order. *)

val pp_transcript : Format.formatter -> t -> unit
(** Human-readable per-round table of the transcript: one line per
    message with round, endpoints and size. *)

val bits_for_int_mod : int -> int
(** Size in bits of one residue modulo the given modulus:
    [ceil(log2 S)]. *)

val float_bits : int
(** Size of one real number on the wire — the paper's [f] (we use 64,
    IEEE double). *)
