type result = { share1 : int array; share2 : int array }

let run st ~wire ~parties ~modulus ~input_bound ~inputs =
  if input_bound < 0 || input_bound >= modulus then
    invalid_arg "Protocol2_crypto.run: need 0 <= A < S";
  let bits = Wire.bits_for_int_mod modulus in
  if bits > 40 then invalid_arg "Protocol2_crypto.run: modulus too wide for the comparison";
  let len = if Array.length inputs = 0 then 0 else Array.length inputs.(0) in
  for l = 0 to len - 1 do
    let total = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
    if total > input_bound then
      invalid_arg "Protocol2_crypto.run: aggregate exceeds input bound"
  done;
  let { Protocol1.share1; share2 } = Protocol1.run st ~wire ~parties ~modulus ~inputs in
  (* One millionaires' comparison per counter: wrapped iff
     s1 > S - s2 - 1.  Player 1 holds x = s1, player 2 holds
     y = S - s2 - 1 and learns the verdict. *)
  let final2 = Array.make len 0 in
  for l = 0 to len - 1 do
    let wrapped =
      Compare.greater_than st ~wire ~holder_x:parties.(0) ~holder_y:parties.(1) ~bits
        ~x:share1.(l)
        ~y:(modulus - share2.(l) - 1)
    in
    final2.(l) <- (if wrapped then share2.(l) - modulus else share2.(l))
  done;
  { share1; share2 = final2 }
