(** Secure two-party comparison — the millionaires' problem.

    Sec. 4.1 observes that Protocol 2's wrap-around question
    ([s1 + s2 >= S?]) is an instance of Yao's millionaires' problem and
    that all known cryptographic solutions are expensive, which is why
    the paper opts for the curious-but-honest third party.  This module
    implements the cryptographic alternative — the Lin-Tzeng (2005)
    0/1-encoding protocol instantiated over Paillier — so the trade-off
    can be measured (see {!Protocol2_crypto} and the bench ablation).

    Protocol (semi-honest; decides [x > y] where player X holds [x] and
    player Y holds [y], both [l]-bit):
    + Y generates a Paillier keypair and, for every bit position, sends
      the encryption of the integer encoding of its {e 0-encoding}
      element at that position (a random dummy where none exists);
    + X homomorphically computes, per position,
      [Enc(r * (t0 - t1))] for its own {e 1-encoding} element [t1]
      (a dummy where none exists) with a fresh random [r], and returns
      the ciphertexts in a random order;
    + Y decrypts: some plaintext is zero iff the encodings intersect
      iff [x > y].

    Y learns the verdict and nothing else (the non-matching plaintexts
    are uniformly random); X learns nothing.  Cost: [2l + 1]
    ciphertexts and 3 rounds per comparison — versus 2 integers and 1
    bit for the third-party trick. *)

val greater_than :
  Spe_rng.State.t ->
  wire:Wire.t ->
  holder_x:Wire.party ->
  holder_y:Wire.party ->
  bits:int ->
  x:int ->
  y:int ->
  bool
(** [greater_than st ~wire ~holder_x ~holder_y ~bits ~x ~y] returns
    [x > y], computed by the protocol above with [bits]-bit encodings
    (both inputs must fit).  The verdict is learned by [holder_y].
    Raises [Invalid_argument] on out-of-range inputs. *)

val wire_bits : bits:int -> key_bits:int -> int
(** Closed-form wire cost of one comparison (key + 2·bits + 1
    ciphertexts... exactly: key broadcast + bits queries + bits
    responses). *)
