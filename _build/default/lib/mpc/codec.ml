module Nat = Spe_bignum.Nat

let residue_bytes ~modulus = (Wire.bits_for_int_mod modulus + 7) / 8

let encode_residues ~modulus values =
  let width = residue_bytes ~modulus in
  let buf = Bytes.create (width * Array.length values) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= modulus then invalid_arg "Codec.encode_residues: value out of range";
      let base = i * width in
      let rec fill j v =
        if j >= 0 then begin
          Bytes.set buf (base + j) (Char.chr (v land 0xFF));
          fill (j - 1) (v lsr 8)
        end
        else if v <> 0 then invalid_arg "Codec.encode_residues: width overflow"
      in
      fill (width - 1) v)
    values;
  buf

let decode_residues ~modulus ~count buf =
  let width = residue_bytes ~modulus in
  if Bytes.length buf <> width * count then invalid_arg "Codec.decode_residues: length mismatch";
  Array.init count (fun i ->
      let base = i * width in
      let v = ref 0 in
      for j = 0 to width - 1 do
        v := (!v lsl 8) lor Char.code (Bytes.get buf (base + j))
      done;
      if !v >= modulus then invalid_arg "Codec.decode_residues: residue out of range";
      !v)

let encode_floats values =
  let buf = Bytes.create (8 * Array.length values) in
  Array.iteri (fun i v -> Bytes.set_int64_be buf (8 * i) (Int64.bits_of_float v)) values;
  buf

let decode_floats ~count buf =
  if Bytes.length buf <> 8 * count then invalid_arg "Codec.decode_floats: length mismatch";
  Array.init count (fun i -> Int64.float_of_bits (Bytes.get_int64_be buf (8 * i)))

let encode_nats ~width_bits values =
  if width_bits < 1 then invalid_arg "Codec.encode_nats: width must be positive";
  let width = (width_bits + 7) / 8 in
  let buf = Bytes.create (width * Array.length values) in
  Array.iteri
    (fun i v ->
      if Nat.bit_length v > width_bits then invalid_arg "Codec.encode_nats: value exceeds width";
      let base = i * width in
      for j = 0 to width - 1 do
        (* Byte j holds bits [8*(width-1-j), 8*(width-j)) of v. *)
        let lo = 8 * (width - 1 - j) in
        let byte = ref 0 in
        for b = 7 downto 0 do
          byte := (!byte lsl 1) lor (if Nat.test_bit v (lo + b) then 1 else 0)
        done;
        Bytes.set buf (base + j) (Char.chr !byte)
      done)
    values;
  buf

let decode_nats ~width_bits ~count buf =
  let width = (width_bits + 7) / 8 in
  if Bytes.length buf <> width * count then invalid_arg "Codec.decode_nats: length mismatch";
  Array.init count (fun i ->
      let base = i * width in
      let acc = ref Nat.zero in
      for j = 0 to width - 1 do
        acc := Nat.add (Nat.shift_left !acc 8) (Nat.of_int (Char.code (Bytes.get buf (base + j))))
      done;
      !acc)

let encode_bitset flags =
  let n = Array.length flags in
  let buf = Bytes.make ((n + 7) / 8) '\000' in
  Array.iteri
    (fun i flag ->
      if flag then begin
        let byte = i / 8 and bit = i mod 8 in
        Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lor (1 lsl bit)))
      end)
    flags;
  buf

let decode_bitset ~count buf =
  if Bytes.length buf <> (count + 7) / 8 then invalid_arg "Codec.decode_bitset: length mismatch";
  Array.init count (fun i -> Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0)
