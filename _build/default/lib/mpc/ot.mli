(** 1-out-of-N oblivious transfer over Paillier.

    Sec. 5.1.1 sketches the "perfectly hiding" alternative to the
    published pair set [E']: run the counters for {e all} [n^2 - n]
    pairs, then let the host retrieve the shares of his real arcs with
    an [|E|]-out-of-[(n^2 - n)] oblivious transfer — and dismisses it
    as prohibitive.  This module provides the primitive so the cost
    claim can be demonstrated rather than asserted (see the bench
    ablation and [Protocol4_oblivious]).

    Construction (semi-honest): the receiver Paillier-encrypts the unit
    vector of its choice index and sends all [N] ciphertexts; the
    sender homomorphically computes
    [Enc(sum_i m_i * e_i) = Enc(m_choice)] and returns one ciphertext
    after re-randomisation.  The receiver decrypts.  The sender never
    sees the index (semantic security); the receiver learns only the
    chosen message (the response is a single ciphertext of the
    selected value).  Cost: [N + 1] ciphertexts per transfer — the
    quadratic blow-up the paper warns about.

    Messages are non-negative integers below the Paillier modulus. *)

type sender_view = {
  queries : Spe_bignum.Nat.t array;  (** The receiver's encrypted unit vector. *)
  response_bits : int;  (** Ciphertext size, for cost accounting. *)
}

val transfer :
  Spe_rng.State.t ->
  wire:Wire.t ->
  sender:Wire.party ->
  receiver:Wire.party ->
  key_bits:int ->
  messages:int array ->
  choice:int ->
  int
(** [transfer st ~wire ~sender ~receiver ~key_bits ~messages ~choice]
    runs one full 1-out-of-N OT (the receiver generates a fresh
    keypair) and returns the message the receiver obtained — which is
    guaranteed to be [messages.(choice)].  Declares the key, the [N]
    query ciphertexts and the response on the wire (3 rounds).  Raises
    [Invalid_argument] on an out-of-range choice or negative
    messages. *)

val wire_bits : n:int -> key_bits:int -> int
(** Closed-form wire cost of one transfer: key + (N+1) ciphertexts —
    used by the Sec. 5.1.1 cost comparison without running the
    transfers. *)
