module State = Spe_rng.State
module Perm = Spe_rng.Perm

type leak = Lower_bound of int | Upper_bound of int | Nothing

let pp_leak fmt = function
  | Lower_bound v -> Format.fprintf fmt "x >= %d" v
  | Upper_bound v -> Format.fprintf fmt "x <= %d" v
  | Nothing -> Format.pp_print_string fmt "nothing"

type views = { p2_leaks : leak array; p3_leaks : leak array; p3_y : int array }

type result = { share1 : int array; share2 : int array; views : views }

(* Theorem 4.1 (proof, P2 part): after learning the wrap verdict, P2
   holds s2 in [0, S).  No wrap: x = s1 + s2 >= s2, non-trivial iff
   s2 > 0.  Wrap: x <= s2 - 1, non-trivial iff s2 <= A. *)
let p2_leak ~input_bound ~s2 ~wrapped =
  if wrapped then if s2 <= input_bound then Upper_bound (s2 - 1) else Nothing
  else if s2 > 0 then Lower_bound s2
  else Nothing

(* Theorem 4.1 (proof, P3 part): T recovers z = x + r from y.  Since
   0 <= r <= S - A - 1: x >= z - (S - A - 1), non-trivial iff
   z > S - A - 1; and x <= z, non-trivial iff z < A. *)
let p3_leak ~modulus ~input_bound ~y =
  let z = if y >= modulus then y - modulus else y in
  if z < input_bound then Upper_bound z
  else if z > modulus - input_bound - 1 then Lower_bound (z - (modulus - input_bound - 1))
  else Nothing

let run st ~wire ~parties ~third_party ~modulus ~input_bound ~inputs =
  if input_bound < 0 || input_bound >= modulus then
    invalid_arg "Protocol2.run: need 0 <= A < S";
  if third_party = parties.(0) || third_party = parties.(1) then
    invalid_arg "Protocol2.run: third party must differ from players 1 and 2";
  (* The aggregate of every counter must fit in [0, A] for the
     wrap-detection argument to hold. *)
  let len = if Array.length inputs = 0 then 0 else Array.length inputs.(0) in
  for l = 0 to len - 1 do
    let total = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
    if total > input_bound then invalid_arg "Protocol2.run: aggregate exceeds input bound"
  done;
  let { Protocol1.share1; share2 } = Protocol1.run st ~wire ~parties ~modulus ~inputs in
  let elem_bits = Wire.bits_for_int_mod modulus in
  (* Step 2: P2 draws masks r_l uniform on [0, S - A - 1]. *)
  let masks = Array.init len (fun _ -> State.next_int st (modulus - input_bound)) in
  (* Secret permutation shared by P1 and P2 (batched variant, Sec. 5):
     the sequences sent to T are reordered so leaked bounds cannot be
     attributed. *)
  let perm = Perm.random st len in
  let s1_perm = Perm.permute_array perm share1 in
  let masked_perm = Perm.permute_array perm (Array.init len (fun l -> share2.(l) + masks.(l))) in
  (* Steps 3-4: both messages carry the whole vector. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:third_party ~bits:(len * elem_bits);
      Wire.send wire ~src:parties.(1) ~dst:third_party ~bits:(len * elem_bits));
  (* Step 5: T computes y and announces the verdicts (1 bit per
     counter). *)
  let y = Array.init len (fun l -> s1_perm.(l) + masked_perm.(l)) in
  let verdicts_perm = Array.map (fun yl -> yl >= modulus) y in
  Wire.round wire (fun () -> Wire.send wire ~src:third_party ~dst:parties.(1) ~bits:len);
  (* Steps 7-8: P2 un-permutes the verdicts and adjusts his shares.
     The verdict of original counter l sits at permuted position
     perm(l). *)
  let p2_leaks = Array.make len Nothing in
  let final2 = Array.make len 0 in
  for l = 0 to len - 1 do
    let wrapped = verdicts_perm.(Perm.apply perm l) in
    p2_leaks.(l) <- p2_leak ~input_bound ~s2:share2.(l) ~wrapped;
    final2.(l) <- (if wrapped then share2.(l) - modulus else share2.(l))
  done;
  let p3_leaks = Array.map (fun yl -> p3_leak ~modulus ~input_bound ~y:yl) y in
  { share1; share2 = final2; views = { p2_leaks; p3_leaks; p3_y = y } }
