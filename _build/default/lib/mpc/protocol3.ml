module Dist = Spe_rng.Dist

type outcome = { quotient : float; host_view : float * float; mask : float }

let run st ~wire ~p1 ~p2 ~host ~a1 ~a2 =
  if a1 < 0 || a2 < 0 then invalid_arg "Protocol3.run: inputs must be non-negative";
  (* Steps 1-2: joint coin flipping modelled by the shared generator
     (semi-honest; see DESIGN.md). *)
  let r = Dist.mask_pair st in
  let m1 = r *. float_of_int a1 and m2 = r *. float_of_int a2 in
  (* Steps 3-4. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:p1 ~dst:host ~bits:Wire.float_bits;
      Wire.send wire ~src:p2 ~dst:host ~bits:Wire.float_bits);
  (* Steps 5-9. *)
  let quotient = if m2 = 0. then 0. else m1 /. m2 in
  { quotient; host_view = (m1, m2); mask = r }

let divide_shares ~mask ~num:(s1, s2) ~den:(t1, t2) =
  let numerator = (mask *. float_of_int s1) +. (mask *. float_of_int s2) in
  let denominator = (mask *. float_of_int t1) +. (mask *. float_of_int t2) in
  if denominator = 0. then 0. else numerator /. denominator
