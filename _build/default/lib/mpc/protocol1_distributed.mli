(** Protocol 1 on the message-passing {!Runtime} — each player is an
    isolated state machine that sees only its own input and inbox.

    Functionally identical to {!Protocol1.run}; exists as a mechanised
    cross-check that the central implementation's data flow is honest
    (no party touches a value it was never sent).  The tests assert
    both implementations reconstruct the same sums and charge the same
    wire totals up to byte rounding. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  modulus:int ->
  inputs:int array array ->
  Protocol1.result
(** Same contract as {!Protocol1.run}.  Each party draws its share
    randomness from a generator split off the supplied one. *)
