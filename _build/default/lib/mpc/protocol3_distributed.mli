(** Protocol 3 on the message-passing {!Runtime}, completing the
    distributed-twin validation set (Protocols 1-3).

    Players 1 and 2 hold the private integers; the host receives the
    masked reals and divides.  The joint mask (Steps 1-2) is
    precomputed from a shared generator, as everywhere else. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  p1:Wire.party ->
  p2:Wire.party ->
  host:Wire.party ->
  a1:int ->
  a2:int ->
  float
(** Returns the quotient the host computed; same contract as
    [Protocol3.run] (zero on a zero denominator). *)
