module State = Spe_rng.State

type result = { share1 : int array; share2 : int array }

let max_modulus = 1 lsl 61

let validate ~parties ~modulus ~inputs =
  let m = Array.length parties in
  if m < 2 then invalid_arg "Protocol1.run: need at least two parties";
  if Array.length inputs <> m then invalid_arg "Protocol1.run: one input vector per party";
  if modulus <= 1 || modulus > max_modulus then
    invalid_arg "Protocol1.run: modulus out of range";
  let len = Array.length inputs.(0) in
  Array.iter
    (fun v ->
      if Array.length v <> len then invalid_arg "Protocol1.run: input vector length mismatch";
      Array.iter
        (fun x -> if x < 0 || x >= modulus then invalid_arg "Protocol1.run: input out of range")
        v)
    inputs;
  (m, len)

let run st ~wire ~parties ~modulus ~inputs =
  let m, len = validate ~parties ~modulus ~inputs in
  let elem_bits = Wire.bits_for_int_mod modulus in
  (* pieces.(k).(j) is the share vector P_k addresses to P_j: m random
     vectors summing to P_k's input, componentwise mod S. *)
  let pieces =
    Array.map
      (fun input ->
        let shares = Array.init m (fun _ -> Array.make len 0) in
        Array.iteri
          (fun l x ->
            let partial = ref 0 in
            for j = 1 to m - 1 do
              let r = State.next_int st modulus in
              shares.(j).(l) <- r;
              partial := (!partial + r) mod modulus
            done;
            shares.(0).(l) <- ((x - !partial) mod modulus + modulus) mod modulus)
          input;
        shares)
      inputs
  in
  (* Step 2: every P_k sends his j-th piece to P_j (j <> k). *)
  Wire.round wire (fun () ->
      for k = 0 to m - 1 do
        for j = 0 to m - 1 do
          if j <> k then
            Wire.send wire ~src:parties.(k) ~dst:parties.(j) ~bits:(len * elem_bits)
        done
      done);
  (* Step 3: P_j aggregates the pieces addressed to him. *)
  let aggregated =
    Array.init m (fun j ->
        let s = Array.make len 0 in
        for k = 0 to m - 1 do
          for l = 0 to len - 1 do
            s.(l) <- (s.(l) + pieces.(k).(j).(l)) mod modulus
          done
        done;
        s)
  in
  (* Steps 4-5: P_3..P_m forward their aggregates to P_2, who folds
     them into his own. *)
  if m > 2 then begin
    Wire.round wire (fun () ->
        for j = 2 to m - 1 do
          Wire.send wire ~src:parties.(j) ~dst:parties.(1) ~bits:(len * elem_bits)
        done);
    for j = 2 to m - 1 do
      for l = 0 to len - 1 do
        aggregated.(1).(l) <- (aggregated.(1).(l) + aggregated.(j).(l)) mod modulus
      done
    done
  end;
  { share1 = aggregated.(0); share2 = aggregated.(1) }
