module Dist = Spe_rng.Dist
module State = Spe_rng.State

let run st ~wire ~p1 ~p2 ~host ~a1 ~a2 =
  if a1 < 0 || a2 < 0 then invalid_arg "Protocol3_distributed.run: inputs must be non-negative";
  (* Steps 1-2: jointly drawn mask. *)
  let r = Dist.mask_pair (State.split st) in
  let quotient = ref 0. in
  let engine = Runtime.create () in
  let sender value party =
    Runtime.add_party engine party (fun ~round ~inbox:_ ->
        if round = 1 then
          [ { Runtime.src = party; dst = host;
              payload = Runtime.Floats [| r *. float_of_int value |] } ]
        else [])
  in
  sender a1 p1;
  sender a2 p2;
  Runtime.add_party engine host (fun ~round:_ ~inbox ->
      let masked_of party =
        List.find_map
          (fun msg ->
            match msg.Runtime.payload with
            | Runtime.Floats v when msg.Runtime.src = party -> Some v.(0)
            | _ -> None)
          inbox
      in
      (match (masked_of p1, masked_of p2) with
      | Some m1, Some m2 -> quotient := (if m2 = 0. then 0. else m1 /. m2)
      | _ -> ());
      []);
  let _ = Runtime.run engine ~wire ~max_rounds:4 in
  !quotient
