lib/mpc/codec.mli: Spe_bignum
