lib/mpc/protocol1_distributed.ml: Array List Protocol1 Runtime Spe_rng
