lib/mpc/wire.mli: Format
