lib/mpc/ot.mli: Spe_bignum Spe_rng Wire
