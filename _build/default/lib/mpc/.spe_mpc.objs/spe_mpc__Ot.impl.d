lib/mpc/ot.ml: Array Seq Spe_bignum Spe_crypto Spe_rng Wire
