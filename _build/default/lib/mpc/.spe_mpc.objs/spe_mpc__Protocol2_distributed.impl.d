lib/mpc/protocol2_distributed.ml: Array List Runtime Spe_rng
