lib/mpc/runtime.mli: Wire
