lib/mpc/compare.ml: Array Spe_bignum Spe_crypto Spe_rng Wire
