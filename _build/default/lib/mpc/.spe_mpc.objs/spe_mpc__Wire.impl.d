lib/mpc/wire.ml: Format Fun List
