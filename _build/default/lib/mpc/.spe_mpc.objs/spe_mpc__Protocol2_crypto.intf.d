lib/mpc/protocol2_crypto.mli: Spe_rng Wire
