lib/mpc/protocol2_distributed.mli: Spe_rng Wire
