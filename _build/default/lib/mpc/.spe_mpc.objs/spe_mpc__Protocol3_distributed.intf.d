lib/mpc/protocol3_distributed.mli: Spe_rng Wire
