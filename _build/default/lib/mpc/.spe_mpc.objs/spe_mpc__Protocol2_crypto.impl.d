lib/mpc/protocol2_crypto.ml: Array Compare Protocol1 Wire
