lib/mpc/protocol2.mli: Format Spe_rng Wire
