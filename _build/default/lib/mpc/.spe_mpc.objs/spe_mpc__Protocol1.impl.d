lib/mpc/protocol1.ml: Array Spe_rng Wire
