lib/mpc/codec.ml: Array Bytes Char Int64 Spe_bignum Wire
