lib/mpc/protocol1_distributed.mli: Protocol1 Spe_rng Wire
