lib/mpc/protocol3_distributed.ml: Array List Runtime Spe_rng
