lib/mpc/protocol1.mli: Spe_rng Wire
