lib/mpc/protocol3.ml: Spe_rng Wire
