lib/mpc/compare.mli: Spe_rng Wire
