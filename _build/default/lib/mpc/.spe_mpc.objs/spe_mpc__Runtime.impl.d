lib/mpc/runtime.ml: Bytes Codec Hashtbl List Option Wire
