lib/mpc/protocol3.mli: Spe_rng Wire
