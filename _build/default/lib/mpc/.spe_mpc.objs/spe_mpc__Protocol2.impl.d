lib/mpc/protocol2.ml: Array Format Protocol1 Spe_rng Wire
