(** The cryptographic alternative to Protocol 2's third party.

    Protocol 2 resolves the wrap-around question [s1 + s2 >= S?] by
    handing masked values to a curious-but-honest third party.  Sec 4.1
    notes the alternative — solve the millionaires' problem between
    players 1 and 2 directly — and dismisses it as expensive.  This
    module implements that alternative so the trade-off can be
    measured: Protocol 1 as usual, then one {!Compare.greater_than}
    per counter ([s1 > S - s2 - 1], verdict to player 2), no third
    party at all.

    Privacy: player 2 still learns exactly what Theorem 4.1(a) grants
    him (the wrap-around verdict); nobody else learns anything — the
    Theorem 4.1(b) leakage to the third party disappears.  Cost: two
    Paillier ciphertexts per bit of [S] per counter, versus two
    integers and one bit for the whole batch. *)

type result = {
  share1 : int array;  (** Player 1's integer share, in [[0, S)]. *)
  share2 : int array;  (** Player 2's integer share, possibly negative. *)
}

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  result
(** Same contract as [Protocol2.run] (integer shares of the aggregate
    sums), with the comparison done cryptographically between players
    1 and 2.  [modulus] must fit the comparison width (at most 2^40). *)
