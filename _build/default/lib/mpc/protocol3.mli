(** Protocol 3 — secure division of private integers.

    Players 1 and 2 hold integers [a1, a2] in [[0, A]]; the host must
    learn the real quotient [a1 / a2] (zero if [a2 = 0]) and as little
    as possible beyond it.  The two players jointly draw
    [M ~ Z] (pdf [mu^-2] on [[1, inf)]) and [r ~ U(0, M)], send the
    host the masked reals [r * a1] and [r * a2], and the host divides —
    the mask cancels.

    Because [Z] is heavy-tailed, Theorem 4.3 shows every positive value
    remains a possible pre-image of a masked observation; Theorem 4.4
    gives the exact posterior (implemented in [Spe_privacy.Posterior]).
    A zero observation does reveal a zero input — which the paper
    argues is the insensitive direction (not having acted).

    {!divide_shares} is the Protocol 4 variant: the inputs arrive as
    integer additive shares held by players 1 and 2, each share is
    multiplied by the {e same} mask, and the host sums before dividing:
    [(r*s1_num + r*s2_num) / (r*s1_den + r*s2_den) = num / den]. *)

type outcome = {
  quotient : float;
  host_view : float * float;  (** The masked values [r*a1, r*a2]. *)
  mask : float;  (** The mask [r] (known to players 1-2 only). *)
}

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  p1:Wire.party ->
  p2:Wire.party ->
  host:Wire.party ->
  a1:int ->
  a2:int ->
  outcome
(** One division; inputs must be non-negative.  Consumes one wire round
    (the two masked sends). *)

val divide_shares : mask:float -> num:int * int -> den:int * int -> float
(** Host-side arithmetic of Protocol 4, Step 9, given the two masked
    share pairs (already multiplied by the caller); exposed separately
    for testing.  [divide_shares ~mask ~num:(s1, s2) ~den:(t1, t2)] is
    [(mask*s1 + mask*s2) / (mask*t1 + mask*t2)], zero when the
    denominator shares cancel. *)
