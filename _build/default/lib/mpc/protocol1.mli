(** Protocol 1 — secure computation of modular additive shares of a sum
    of private inputs (Benaloh).

    [m >= 2] players each hold a private vector of integers modulo [S].
    Every player splits each of his values into [m] uniform shares
    summing to it mod [S] and distributes them; player [j] adds up what
    he received.  Players 3..m then forward their aggregated shares to
    player 2.  The outcome: player 1 holds a uniformly random [s1],
    player 2 holds [s2], with [s1 + s2 = x mod S] where [x] is the sum
    of all private inputs.  Perfectly secure in the semi-honest model —
    every individual view is a uniform residue.

    The implementation is batched: all counters of a protocol run are
    shared in one pass, and each pairwise transfer is declared on the
    wire as a single message carrying the whole vector — matching how
    the paper accounts Table 1's message sizes. *)

type result = {
  share1 : int array;  (** Player 1's share per counter, in [[0, S)]. *)
  share2 : int array;  (** Player 2's share per counter, in [[0, S)]. *)
}

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  modulus:int ->
  inputs:int array array ->
  result
(** [run st ~wire ~parties ~modulus ~inputs] executes the protocol.
    [inputs.(k)] is party [k]'s private vector; all vectors must have
    equal length and entries in [[0, modulus)].  Requires at least two
    parties and [1 < modulus <= 2^61] (so modular sums cannot overflow
    the native int).  Consumes 2 wire rounds (1 when [m = 2]). *)
