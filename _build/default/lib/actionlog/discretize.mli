(** Time discretization of action logs.

    Sec. 2 notes that real activity data "needs to be heavily
    discretized" before window-based influence models apply: raw
    timestamps (seconds) must be binned into the integer steps the
    counters assume.  This module provides the binning and a jitter
    transform for robustness experiments — the bench sweeps the bin
    width and reports how the window counters and estimates respond. *)

val rebin : Log.t -> step:int -> Log.t
(** [rebin log ~step] maps every time stamp [t] to [t / step]
    (integer division).  [step >= 1].  Records of one user that
    collapse into the same (user, action) pair keep the earliest bin
    (they already did — at most one record per pair). *)

val jitter : Spe_rng.State.t -> Log.t -> amount:int -> Log.t
(** Add uniform noise from [[-amount, amount]] to every time stamp,
    clamped at zero — models measurement slack in the recorded
    times. *)

val span : Log.t -> int
(** [max_time - min_time] over the records ([0] for empty or singleton
    logs) — handy to choose a bin width. *)
