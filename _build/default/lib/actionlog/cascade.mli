(** Synthetic propagation-trace generation.

    The paper assumes a log of past propagations exists (sales
    histories); none is public, so we generate one by simulating the
    very process the influence model posits: an independent-cascade
    diffusion over the social graph with planted ground-truth
    probabilities (DESIGN.md substitution table).

    Each action starts at one or more seed users at time 0.  When user
    [u] performs the action at time [t], each follower [v] of [u] that
    has not yet performed it gets one activation attempt, succeeding
    with probability [p_uv]; on success [v] performs the action at time
    [t + d] with the delay [d] drawn from [[1, max_delay]].  Because
    the counting estimator of Eq. (1) measures "v followed u within the
    window h", running it with [h >= max_delay] on a large trace set
    recovers the planted probabilities up to sampling noise — which is
    exactly the validation the end-to-end tests perform. *)

type params = {
  num_actions : int;  (** How many distinct actions (traces) to generate. *)
  seeds_per_action : int;  (** Initial adopters per action. *)
  max_delay : int;  (** Delays are uniform on [[1, max_delay]]. *)
}

val default_params : params
(** 50 actions, 1 seed each, delays in [[1, 3]]. *)

type planted = {
  graph : Spe_graph.Digraph.t;
  probability : int -> int -> float;
      (** Ground-truth influence probability per arc.  Only queried on
          arcs of [graph]. *)
}

val uniform_probabilities : p:float -> Spe_graph.Digraph.t -> planted
(** Every arc carries probability [p]. *)

val degree_weighted_probabilities : Spe_graph.Digraph.t -> planted
(** The "weighted cascade" convention: [p_uv = 1 / in_degree(v)]. *)

val random_probabilities :
  Spe_rng.State.t -> lo:float -> hi:float -> Spe_graph.Digraph.t -> planted
(** Independent uniform probability on [[lo, hi]] per arc (fixed at
    creation; deterministic thereafter). *)

val generate : Spe_rng.State.t -> planted -> params -> Log.t
(** Run one independent cascade per action and collect the activation
    records into a log with [num_users = n] and the given action
    universe. *)
