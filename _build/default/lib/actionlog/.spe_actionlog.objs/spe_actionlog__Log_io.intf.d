lib/actionlog/log_io.mli: Log
