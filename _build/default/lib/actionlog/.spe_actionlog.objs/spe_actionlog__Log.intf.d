lib/actionlog/log.mli: Format
