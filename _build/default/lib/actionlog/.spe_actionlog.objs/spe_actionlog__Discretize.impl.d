lib/actionlog/discretize.ml: List Log Spe_rng
