lib/actionlog/log.ml: Array Format Hashtbl List Stdlib
