lib/actionlog/spec_io.mli: Partition
