lib/actionlog/spec_io.ml: Array Buffer Fun Hashtbl List Partition Printf String
