lib/actionlog/cascade.ml: Array Hashtbl List Log Set Spe_graph Spe_rng Stdlib
