lib/actionlog/partition.ml: Array Hashtbl List Log Spe_rng
