lib/actionlog/log_io.ml: Buffer Fun List Log Printf String
