lib/actionlog/discretize.mli: Log Spe_rng
