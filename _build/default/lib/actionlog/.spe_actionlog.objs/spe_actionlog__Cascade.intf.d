lib/actionlog/cascade.mli: Log Spe_graph Spe_rng
