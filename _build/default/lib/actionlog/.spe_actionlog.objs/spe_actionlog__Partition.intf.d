lib/actionlog/partition.mli: Log Spe_rng
