let to_string log =
  let buf = Buffer.create (24 * Log.size log) in
  Buffer.add_string buf
    (Printf.sprintf "universe %d %d\n" (Log.num_users log) (Log.num_actions log));
  List.iter
    (fun (r : Log.record) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d\n" r.Log.user r.Log.action r.Log.time))
    (Log.records log);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let universe = ref None and records = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [] -> ()
      | s :: _ when String.length s > 0 && s.[0] = '#' -> ()
      | [ "universe"; users; actions ] -> (
        if !universe <> None then failwith "log file: duplicate header";
        match (int_of_string_opt users, int_of_string_opt actions) with
        | Some u, Some a when u >= 0 && a >= 0 -> universe := Some (u, a)
        | _ -> failwith (Printf.sprintf "log file line %d: bad universe" lineno))
      | [ u; a; t ] -> (
        match (int_of_string_opt u, int_of_string_opt a, int_of_string_opt t) with
        | Some user, Some action, Some time ->
          records := { Log.user; action; time } :: !records
        | _ -> failwith (Printf.sprintf "log file line %d: bad record" lineno))
      | _ -> failwith (Printf.sprintf "log file line %d: unrecognised" lineno))
    lines;
  match !universe with
  | None -> failwith "log file: missing 'universe <users> <actions>' header"
  | Some (num_users, num_actions) ->
    Log.of_records ~num_users ~num_actions (List.rev !records)

let save log path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string log))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
