let to_string (spec : Partition.class_spec) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "providers %d\n" spec.Partition.m);
  Array.iteri
    (fun cls providers ->
      Buffer.add_string buf (Printf.sprintf "class %d" cls);
      Array.iter (fun p -> Buffer.add_string buf (Printf.sprintf " %d" p)) providers;
      Buffer.add_char buf '\n')
    spec.Partition.class_providers;
  Array.iteri
    (fun action cls -> Buffer.add_string buf (Printf.sprintf "action %d %d\n" action cls))
    spec.Partition.action_class;
  Buffer.contents buf

let of_string text =
  let m = ref None in
  let classes = Hashtbl.create 8 in
  let actions = Hashtbl.create 32 in
  let ints lineno parts =
    List.map
      (fun s ->
        match int_of_string_opt s with
        | Some v -> v
        | None -> failwith (Printf.sprintf "spec file line %d: not a number" lineno))
      parts
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [] -> ()
      | s :: _ when String.length s > 0 && s.[0] = '#' -> ()
      | [ "providers"; count ] -> (
        if !m <> None then failwith "spec file: duplicate providers line";
        match int_of_string_opt count with
        | Some v when v > 0 -> m := Some v
        | _ -> failwith (Printf.sprintf "spec file line %d: bad provider count" lineno))
      | "class" :: rest -> (
        match ints lineno rest with
        | cls :: providers when providers <> [] ->
          if Hashtbl.mem classes cls then
            failwith (Printf.sprintf "spec file line %d: duplicate class" lineno);
          Hashtbl.replace classes cls (Array.of_list providers)
        | _ -> failwith (Printf.sprintf "spec file line %d: bad class line" lineno))
      | [ "action"; action; cls ] -> (
        match (int_of_string_opt action, int_of_string_opt cls) with
        | Some a, Some c ->
          if Hashtbl.mem actions a then
            failwith (Printf.sprintf "spec file line %d: duplicate action" lineno);
          Hashtbl.replace actions a c
        | _ -> failwith (Printf.sprintf "spec file line %d: bad action line" lineno))
      | _ -> failwith (Printf.sprintf "spec file line %d: unrecognised" lineno))
    (String.split_on_char '\n' text);
  let m = match !m with Some v -> v | None -> failwith "spec file: missing providers line" in
  let num_classes = Hashtbl.length classes in
  let class_providers =
    Array.init num_classes (fun cls ->
        match Hashtbl.find_opt classes cls with
        | Some providers -> providers
        | None -> failwith (Printf.sprintf "spec file: class ids must be dense, missing %d" cls))
  in
  let num_actions = Hashtbl.length actions in
  let action_class =
    Array.init num_actions (fun a ->
        match Hashtbl.find_opt actions a with
        | Some c -> c
        | None -> failwith (Printf.sprintf "spec file: action ids must be dense, missing %d" a))
  in
  let spec = { Partition.action_class; class_providers; m } in
  Partition.validate_class_spec spec ~num_actions;
  spec

let save spec path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string spec))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
