module State = Spe_rng.State

type class_spec = {
  action_class : int array;
  class_providers : int array array;
  m : int;
}

let validate_class_spec spec ~num_actions =
  if spec.m <= 0 then invalid_arg "Partition.class_spec: need at least one provider";
  if Array.length spec.action_class <> num_actions then
    invalid_arg "Partition.class_spec: action table length mismatch";
  let num_classes = Array.length spec.class_providers in
  Array.iter
    (fun c ->
      if c < 0 || c >= num_classes then invalid_arg "Partition.class_spec: class id out of range")
    spec.action_class;
  Array.iter
    (fun providers ->
      if Array.length providers = 0 then
        invalid_arg "Partition.class_spec: class with no supporting provider";
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun p ->
          if p < 0 || p >= spec.m then
            invalid_arg "Partition.class_spec: provider id out of range";
          if Hashtbl.mem seen p then invalid_arg "Partition.class_spec: duplicate provider";
          Hashtbl.add seen p ())
        providers)
    spec.class_providers

let random_class_spec st ~num_actions ~m ~num_classes =
  if m <= 0 || num_classes <= 0 then
    invalid_arg "Partition.random_class_spec: m and num_classes must be positive";
  let action_class = Array.init num_actions (fun _ -> State.next_int st num_classes) in
  let class_providers =
    Array.init num_classes (fun _ ->
        (* Uniform non-empty subset: flip a coin per provider, retry on
           the empty outcome. *)
        let rec draw () =
          let chosen = List.filter (fun _ -> State.next_bool st) (List.init m (fun p -> p)) in
          if chosen = [] then draw () else Array.of_list chosen
        in
        draw ())
  in
  let spec = { action_class; class_providers; m } in
  validate_class_spec spec ~num_actions;
  spec

let split_by log ~m ~assign =
  let buckets = Array.make m [] in
  List.iter
    (fun (r : Log.record) ->
      let k = assign r in
      if k < 0 || k >= m then invalid_arg "Partition: provider assignment out of range";
      buckets.(k) <- r :: buckets.(k))
    (Log.records log);
  Array.map
    (fun recs ->
      Log.of_records ~num_users:(Log.num_users log) ~num_actions:(Log.num_actions log) recs)
    buckets

let exclusive_by_action log ~owner ~m =
  split_by log ~m ~assign:(fun r -> owner r.Log.action)

let exclusive st log ~m =
  if m <= 0 then invalid_arg "Partition.exclusive: need at least one provider";
  let owner = Array.init (Log.num_actions log) (fun _ -> State.next_int st m) in
  exclusive_by_action log ~owner:(fun a -> owner.(a)) ~m

let non_exclusive st log ~spec =
  validate_class_spec spec ~num_actions:(Log.num_actions log);
  split_by log ~m:spec.m ~assign:(fun r ->
      let providers = spec.class_providers.(spec.action_class.(r.Log.action)) in
      providers.(State.next_int st (Array.length providers)))

let reunify logs =
  match Array.to_list logs with
  | [] -> invalid_arg "Partition.reunify: empty provider array"
  | first :: _ as all ->
    let num_users = Log.num_users first and num_actions = Log.num_actions first in
    List.iter
      (fun l ->
        if Log.num_users l <> num_users || Log.num_actions l <> num_actions then
          invalid_arg "Partition.reunify: mismatched universes")
      all;
    Log.union ~num_users ~num_actions all
