module Digraph = Spe_graph.Digraph
module State = Spe_rng.State
module Dist = Spe_rng.Dist

type params = { num_actions : int; seeds_per_action : int; max_delay : int }

let default_params = { num_actions = 50; seeds_per_action = 1; max_delay = 3 }

type planted = { graph : Digraph.t; probability : int -> int -> float }

let uniform_probabilities ~p graph =
  if p < 0. || p > 1. then invalid_arg "Cascade.uniform_probabilities: p out of [0,1]";
  { graph; probability = (fun _ _ -> p) }

let degree_weighted_probabilities graph =
  let probability _ v =
    let d = Digraph.in_degree graph v in
    if d = 0 then 0. else 1. /. float_of_int d
  in
  { graph; probability }

let random_probabilities st ~lo ~hi graph =
  if lo < 0. || hi > 1. || lo > hi then
    invalid_arg "Cascade.random_probabilities: need 0 <= lo <= hi <= 1";
  (* Draw once per arc and freeze in a table so the planted model is a
     deterministic function afterwards. *)
  let table = Hashtbl.create (Digraph.edge_count graph) in
  Digraph.iter_edges graph (fun u v ->
      Hashtbl.replace table (u, v) (lo +. (State.next_float st *. (hi -. lo))));
  let probability u v =
    match Hashtbl.find_opt table (u, v) with Some p -> p | None -> 0.
  in
  { graph; probability }

(* One independent cascade: event-queue simulation ordered by
   activation time.  Each arc fires at most one attempt, when its
   source activates. *)
let run_cascade st planted ~seeds ~max_delay ~action =
  let g = planted.graph in
  let n = Digraph.n g in
  let activation = Array.make n (-1) in
  (* Min-queue on (time, node); sizes are small, a sorted module-level
     approach would be overkill — use a Hashtbl-free pairing via a
     sorted list in a ref. *)
  let module Pq = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let queue = ref Pq.empty in
  List.iter
    (fun s ->
      if activation.(s) < 0 then begin
        activation.(s) <- 0;
        queue := Pq.add (0, s) !queue
      end)
    seeds;
  while not (Pq.is_empty !queue) do
    let ((t, u) as ev) = Pq.min_elt !queue in
    queue := Pq.remove ev !queue;
    Array.iter
      (fun v ->
        if activation.(v) < 0 && Dist.bernoulli st ~p:(planted.probability u v) then begin
          let d = Dist.uniform_int st ~lo:1 ~hi:max_delay in
          activation.(v) <- t + d;
          queue := Pq.add (t + d, v) !queue
        end)
      (Digraph.out_neighbors g u)
  done;
  let recs = ref [] in
  for v = 0 to n - 1 do
    if activation.(v) >= 0 then recs := { Log.user = v; action; time = activation.(v) } :: !recs
  done;
  !recs

let generate st planted params =
  if params.num_actions <= 0 then invalid_arg "Cascade.generate: need at least one action";
  if params.seeds_per_action <= 0 then invalid_arg "Cascade.generate: need at least one seed";
  if params.max_delay < 1 then invalid_arg "Cascade.generate: max_delay must be >= 1";
  let n = Digraph.n planted.graph in
  if params.seeds_per_action > n then invalid_arg "Cascade.generate: more seeds than users";
  let all = ref [] in
  for action = 0 to params.num_actions - 1 do
    (* Distinct random seeds for this action. *)
    let seeds = Hashtbl.create params.seeds_per_action in
    while Hashtbl.length seeds < params.seeds_per_action do
      Hashtbl.replace seeds (State.next_int st n) ()
    done;
    let seeds = Hashtbl.fold (fun s () acc -> s :: acc) seeds [] in
    all := run_cascade st planted ~seeds ~max_delay:params.max_delay ~action @ !all
  done;
  Log.of_records ~num_users:n ~num_actions:params.num_actions !all
