type record = { user : int; action : int; time : int }

type t = {
  num_users : int;
  num_actions : int;
  records : record array; (* sorted by (action, time, user); unique (user, action) *)
}

let compare_record a b =
  let c = Stdlib.compare a.action b.action in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.time b.time in
    if c <> 0 then c else Stdlib.compare a.user b.user

let of_records ~num_users ~num_actions recs =
  if num_users < 0 || num_actions < 0 then invalid_arg "Log.of_records: negative universe size";
  List.iter
    (fun r ->
      if r.user < 0 || r.user >= num_users then invalid_arg "Log.of_records: user out of range";
      if r.action < 0 || r.action >= num_actions then
        invalid_arg "Log.of_records: action out of range";
      if r.time < 0 then invalid_arg "Log.of_records: negative time")
    recs;
  (* Keep the earliest time per (user, action). *)
  let best = Hashtbl.create (List.length recs) in
  List.iter
    (fun r ->
      let k = (r.user, r.action) in
      match Hashtbl.find_opt best k with
      | Some t0 when t0 <= r.time -> ()
      | _ -> Hashtbl.replace best k r.time)
    recs;
  let arr =
    Hashtbl.fold (fun (user, action) time acc -> { user; action; time } :: acc) best []
    |> Array.of_list
  in
  Array.sort compare_record arr;
  { num_users; num_actions; records = arr }

let empty ~num_users ~num_actions = of_records ~num_users ~num_actions []

let records t = Array.to_list t.records
let size t = Array.length t.records
let num_users t = t.num_users
let num_actions t = t.num_actions

let user_activity t =
  let a = Array.make t.num_users 0 in
  Array.iter (fun r -> a.(r.user) <- a.(r.user) + 1) t.records;
  a

let by_action t action =
  if action < 0 || action >= t.num_actions then invalid_arg "Log.by_action: action out of range";
  (* Records are sorted by action first: binary search the block. *)
  let n = Array.length t.records in
  let rec lower lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.records.(mid).action < action then lower (mid + 1) hi else lower lo mid
  in
  let start = lower 0 n in
  let acc = ref [] in
  let i = ref start in
  while !i < n && t.records.(!i).action = action do
    acc := (t.records.(!i).user, t.records.(!i).time) :: !acc;
    incr i
  done;
  List.rev !acc

let by_user t user =
  if user < 0 || user >= t.num_users then invalid_arg "Log.by_user: user out of range";
  Array.fold_right
    (fun r acc -> if r.user = user then (r.action, r.time) :: acc else acc)
    t.records []

let time_of t ~user ~action =
  List.assoc_opt user (by_action t action)

let actions_present t =
  let seen = Array.make t.num_actions false in
  Array.iter (fun r -> seen.(r.action) <- true) t.records;
  let acc = ref [] in
  for a = t.num_actions - 1 downto 0 do
    if seen.(a) then acc := a :: !acc
  done;
  !acc

let max_time t = Array.fold_left (fun m r -> max m r.time) 0 t.records

let union ~num_users ~num_actions logs =
  of_records ~num_users ~num_actions (List.concat_map records logs)

let filter_actions t keep =
  let kept = Array.to_list t.records |> List.filter (fun r -> keep r.action) in
  { t with records = Array.of_list kept }

let map_records t f ~num_users ~num_actions =
  of_records ~num_users ~num_actions (List.map f (records t))

let equal a b =
  a.num_users = b.num_users && a.num_actions = b.num_actions
  && Array.length a.records = Array.length b.records
  && Array.for_all2 (fun x y -> compare_record x y = 0) a.records b.records

let pp fmt t =
  Format.fprintf fmt "log(users=%d, actions=%d, records=%d)" t.num_users t.num_actions
    (Array.length t.records)
