(** Plain-text persistence for action-class specifications (the public
    non-exclusive-case metadata of Sec. 5.2: which class each action
    belongs to and which providers support each class).

    Format:
    {v
    providers <m>
    class <id> <provider> <provider> ...
    action <action-id> <class-id>
    v}
    ['#'] comments and blank lines ignored; every action of the
    universe must be assigned exactly once. *)

val save : Partition.class_spec -> string -> unit
val load : string -> Partition.class_spec

val to_string : Partition.class_spec -> string
val of_string : string -> Partition.class_spec
(** Raises [Failure] with a line-numbered message on malformed input;
    the result is validated with [Partition.validate_class_spec]
    against the action count implied by the table. *)
