module State = Spe_rng.State

let rebin log ~step =
  if step < 1 then invalid_arg "Discretize.rebin: step must be >= 1";
  Log.map_records log
    (fun r -> { r with Log.time = r.Log.time / step })
    ~num_users:(Log.num_users log) ~num_actions:(Log.num_actions log)

let jitter st log ~amount =
  if amount < 0 then invalid_arg "Discretize.jitter: negative amount";
  Log.map_records log
    (fun r ->
      let delta = State.next_int st ((2 * amount) + 1) - amount in
      { r with Log.time = max 0 (r.Log.time + delta) })
    ~num_users:(Log.num_users log) ~num_actions:(Log.num_actions log)

let span log =
  match Log.records log with
  | [] -> 0
  | first :: rest ->
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (r : Log.record) -> (min lo r.Log.time, max hi r.Log.time))
        (first.Log.time, first.Log.time)
        rest
    in
    hi - lo
