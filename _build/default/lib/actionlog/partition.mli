(** Distributing the unified log across service providers.

    Sec. 1 and Sec. 5 distinguish two settings.  In the {e exclusive}
    case every action is supported by exactly one provider, so each
    propagation trace lives wholly inside one log.  In the
    {e non-exclusive} case actions belong to classes [A_q] (book
    purchases, movie tickets, ...), each class is supported by a set of
    providers [P_q], and the records of one action may scatter across
    all providers of its class. *)

type class_spec = {
  action_class : int array;  (** Action id -> class id. *)
  class_providers : int array array;
      (** Class id -> supporting providers (distinct, each in
          [[0, m)]). *)
  m : int;  (** Number of providers. *)
}

val validate_class_spec : class_spec -> num_actions:int -> unit
(** Raises [Invalid_argument] if the spec is inconsistent (class ids
    out of range, empty provider sets, duplicate providers, wrong
    action table length). *)

val random_class_spec :
  Spe_rng.State.t -> num_actions:int -> m:int -> num_classes:int -> class_spec
(** Random spec: each action lands in a uniform class; each class is
    supported by a uniform non-empty subset of providers. *)

val exclusive : Spe_rng.State.t -> Log.t -> m:int -> Log.t array
(** Assign each action to one uniform provider and split the log
    accordingly.  Every returned log retains the full universe sizes,
    so provider-local counters line up indexwise. *)

val exclusive_by_action : Log.t -> owner:(int -> int) -> m:int -> Log.t array
(** Deterministic exclusive split with an explicit owner map. *)

val non_exclusive : Spe_rng.State.t -> Log.t -> spec:class_spec -> Log.t array
(** Scatter each record to a uniform provider among the supporters of
    its action's class.  The union of the returned logs equals the
    input log. *)

val reunify : Log.t array -> Log.t
(** Union of provider logs (inverse of the splits above).  Raises
    [Invalid_argument] on an empty array or mismatched universes. *)
