(** The action log relation L(User, Time, Action) of Sec. 3.

    A record [(v, alpha, t)] states that user [v] performed action
    [alpha] at time [t].  Users are integers in [[0, num_users)],
    actions in [[0, num_actions)], times are non-negative integers.
    Following the paper, a user performs a given action at most once:
    construction keeps only the earliest occurrence of each
    (user, action) pair. *)

type record = { user : int; action : int; time : int }

type t

val of_records : num_users:int -> num_actions:int -> record list -> t
(** Build a log, deduplicating (user, action) pairs by earliest time.
    Raises [Invalid_argument] if any field is out of range. *)

val empty : num_users:int -> num_actions:int -> t

val records : t -> record list
(** All records sorted by (action, time, user). *)

val size : t -> int
(** Number of records after deduplication. *)

val num_users : t -> int

val num_actions : t -> int
(** Size of the action universe [|A|] — the paper's bound [A] on every
    counter. *)

val user_activity : t -> int array
(** [a_i] for every user: the number of (distinct) actions user [i]
    performed (Sec. 3.1). *)

val by_action : t -> int -> (int * int) list
(** [(user, time)] pairs of the given action, sorted by time then
    user. *)

val by_user : t -> int -> (int * int) list
(** [(action, time)] pairs of the given user, sorted by action. *)

val time_of : t -> user:int -> action:int -> int option
(** Time at which the user performed the action, if ever. *)

val actions_present : t -> int list
(** Distinct actions with at least one record, ascending. *)

val max_time : t -> int
(** Largest time stamp, or [0] for an empty log. *)

val union : num_users:int -> num_actions:int -> t list -> t
(** Unified log [L = U L_k].  When the same (user, action) appears in
    several logs (the non-exclusive case) the earliest time wins; the
    generators produce consistent duplicates so this is a no-op
    reconciliation for them. *)

val filter_actions : t -> (int -> bool) -> t
(** Keep only records whose action satisfies the predicate (used to
    carve out an action class [A_q]). *)

val map_records : t -> (record -> record) -> num_users:int -> num_actions:int -> t
(** Transform every record (obfuscation: renaming users/actions,
    shifting times) and rebuild under possibly different universe
    sizes. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Summary line: sizes only. *)
