(** Plain-text persistence for action logs (the CLI's interchange
    format).

    Format: a header line ["universe <users> <actions>"], then one
    record per line ["<user> <action> <time>"], whitespace-separated,
    ['#'] comments and blank lines ignored. *)

val save : Log.t -> string -> unit
val load : string -> Log.t

val to_string : Log.t -> string
val of_string : string -> Log.t
(** Raises [Failure] with a line-numbered message on malformed input,
    [Invalid_argument] on out-of-range records. *)
