(** Probability distributions used by the protocols.

    The key object is the paper's heavy-tailed distribution [Z] on
    [[1, infinity)] with pdf [f(mu) = mu^-2] (Protocol 3, Step 1): a
    masking bound [M] is drawn from [Z], then the actual multiplicative
    mask [r] is drawn uniformly from [(0, M)].  [Z] has no finite mean,
    which is what makes every positive pre-image plausible a posteriori
    (Theorem 4.3). *)

val heavy_tail : State.t -> float
(** Sample [M ~ Z] by inverse CDF: the CDF is [F(mu) = 1 - 1/mu], so
    [M = 1 / (1 - u)] for [u ~ U[0,1)].  Always [>= 1]. *)

val uniform_open : State.t -> float -> float
(** [uniform_open t m] samples uniformly from the open interval
    [(0, m)]; never returns [0.] exactly (a zero mask would destroy the
    masked values). [m] must be positive. *)

val mask_pair : State.t -> float
(** [mask_pair t] performs Steps 1-2 of Protocol 3: draws [M ~ Z] and
    returns [r ~ U(0, M)].  This is the multiplicative mask applied to
    both numerator and denominator shares. *)

val uniform_int : State.t -> lo:int -> hi:int -> int
(** Uniform integer on the inclusive range [[lo, hi]]. *)

val exponential : State.t -> rate:float -> float
(** Exponential with the given rate, for temporal jitter in cascade
    generation. *)

val geometric : State.t -> p:float -> int
(** Geometric number of failures before the first success,
    [p ∈ (0, 1]]. Used for inter-event delays on the integer time
    axis. *)

val bernoulli : State.t -> p:float -> bool
(** A coin with probability [p] of [true]. *)

val categorical : State.t -> float array -> int
(** [categorical t w] samples index [i] with probability proportional
    to [w.(i)].  Weights must be non-negative with a positive sum. *)
