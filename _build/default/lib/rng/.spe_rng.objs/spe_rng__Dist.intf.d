lib/rng/dist.mli: State
