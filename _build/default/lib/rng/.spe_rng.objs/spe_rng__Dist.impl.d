lib/rng/dist.ml: Array Float State
