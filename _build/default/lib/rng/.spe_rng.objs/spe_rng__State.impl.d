lib/rng/state.ml: Int64
