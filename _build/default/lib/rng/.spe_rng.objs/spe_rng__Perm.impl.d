lib/rng/perm.ml: Array State
