lib/rng/perm.mli: State
