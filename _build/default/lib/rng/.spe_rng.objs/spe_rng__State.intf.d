lib/rng/state.mli:
