type t = int array

let identity n = Array.init n (fun i -> i)

let random st n =
  let a = identity n in
  for i = n - 1 downto 1 do
    let j = State.next_int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let apply (p : t) i = p.(i)

let size (p : t) = Array.length p

let inverse (p : t) =
  let n = Array.length p in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(p.(i)) <- i
  done;
  inv

let permute_array (p : t) a =
  let n = Array.length p in
  if Array.length a <> n then invalid_arg "Spe_rng.Perm.permute_array: size mismatch";
  if n = 0 then [||]
  else begin
    let b = Array.make n a.(0) in
    for i = 0 to n - 1 do
      b.(p.(i)) <- a.(i)
    done;
    b
  end

let random_injection st ~domain ~codomain =
  if domain > codomain then
    invalid_arg "Spe_rng.Perm.random_injection: domain larger than codomain";
  let p = random st codomain in
  Array.sub p 0 domain

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Spe_rng.Perm.of_array: not a permutation";
      seen.(x) <- true)
    a;
  Array.copy a
