(** Deterministic, splittable pseudo-random generator.

    The generator is xoshiro256** seeded through splitmix64.  It is {e
    not} cryptographically secure; it is the simulation RNG used to
    drive workload generation and the protocol simulations
    deterministically.  Cryptographic key material is produced by
    [Spe_crypto], which stretches entropy from a generator of this type
    only in tests and examples (see the DESIGN.md substitution table:
    the semi-honest model lets the simulated parties share seeds). *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 63-bit seed.  The
    default seed is a fixed constant so that unseeded runs are
    reproducible. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used
    to hand sub-generators to parties of a protocol. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform on [[0, bound)]. [bound] must be
    positive.  Unbiased (rejection sampling). *)

val next_float : t -> float
(** Uniform on [[0, 1)] with 53 bits of precision. *)

val next_bool : t -> bool
(** A fair coin. *)

val next_bits : t -> int -> int
(** [next_bits t k] is a uniform [k]-bit non-negative integer,
    [0 <= k <= 62]. *)
