(* xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.  The
   state must never be all-zero; splitmix64 seeding guarantees that
   with overwhelming probability and we additionally force a non-zero
   word. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let z = state +% 0x9E3779B97F4A7C15L in
  let z' = Int64.logxor z (Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z'' = Int64.logxor z' (Int64.shift_right_logical z' 27) *% 0x94D049BB133111EBL in
  (z, Int64.logxor z'' (Int64.shift_right_logical z'' 31))

let of_int64_seed seed =
  let k0, a = splitmix64 seed in
  let k1, b = splitmix64 k0 in
  let k2, c = splitmix64 k1 in
  let _, d = splitmix64 k2 in
  let d = if Int64.equal d 0L && Int64.equal a 0L && Int64.equal b 0L && Int64.equal c 0L
          then 1L else d in
  { s0 = a; s1 = b; s2 = c; s3 = d }

let default_seed = 0x5345435245544956 (* "SECRETIV" *)

let create ?(seed = default_seed) () = of_int64_seed (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_int64_seed (next_int64 t)

(* Top 62 bits as a non-negative OCaml int. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let next_int t bound =
  if bound <= 0 then invalid_arg "Spe_rng.State.next_int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
  let limit = (max_int / 2 / bound) * bound * 2 in
  let rec loop () =
    let v = next_nonneg t in
    if v < limit || limit = 0 then v mod bound else loop ()
  in
  loop ()

let next_float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 *. 0x1p-53

let next_bool t = Int64.compare (next_int64 t) 0L < 0

let next_bits t k =
  if k < 0 || k > 62 then invalid_arg "Spe_rng.State.next_bits: k must be in [0, 62]";
  if k = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - k))
