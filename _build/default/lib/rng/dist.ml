let heavy_tail st =
  let u = State.next_float st in
  1. /. (1. -. u)

let uniform_open st m =
  if m <= 0. then invalid_arg "Spe_rng.Dist.uniform_open: bound must be positive";
  let rec loop () =
    let u = State.next_float st in
    if u = 0. then loop () else u *. m
  in
  loop ()

let mask_pair st =
  let m = heavy_tail st in
  uniform_open st m

let uniform_int st ~lo ~hi =
  if hi < lo then invalid_arg "Spe_rng.Dist.uniform_int: empty range";
  lo + State.next_int st (hi - lo + 1)

let exponential st ~rate =
  if rate <= 0. then invalid_arg "Spe_rng.Dist.exponential: rate must be positive";
  -.log1p (-.State.next_float st) /. rate

let geometric st ~p =
  if p <= 0. || p > 1. then invalid_arg "Spe_rng.Dist.geometric: p must be in (0, 1]";
  if p = 1. then 0
  else
    let u = State.next_float st in
    (* Inverse CDF of the geometric distribution on {0, 1, ...}. *)
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))

let bernoulli st ~p =
  if p < 0. || p > 1. then invalid_arg "Spe_rng.Dist.bernoulli: p must be in [0, 1]";
  State.next_float st < p

let categorical st w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Spe_rng.Dist.categorical: weights must have positive sum";
  Array.iter (fun x -> if x < 0. then invalid_arg "Spe_rng.Dist.categorical: negative weight") w;
  let target = State.next_float st *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
