(** Random permutations and injections.

    Protocols 4 and 5 rely on secret uniformly-random permutations: the
    batched Protocol 2 permutes the counter sequence sent to the third
    party, and Protocol 5's log obfuscation renames users and actions
    through secret permutations, plus a random injection when fake
    users are added (Sec. 5.2). *)

type t = private int array
(** A permutation of [{0, ..., n-1}]: entry [i] holds the image of
    [i]. *)

val identity : int -> t
(** The identity permutation on [n] elements. *)

val random : State.t -> int -> t
(** Uniform permutation by Fisher-Yates. *)

val apply : t -> int -> int
(** [apply p i] is the image of [i]. *)

val inverse : t -> t
(** The inverse permutation. *)

val size : t -> int
(** Number of elements. *)

val permute_array : t -> 'a array -> 'a array
(** [permute_array p a] returns [b] with [b.(apply p i) = a.(i)]. *)

val random_injection : State.t -> domain:int -> codomain:int -> int array
(** [random_injection st ~domain ~codomain] is a uniformly random
    injective map [{0..domain-1} -> {0..codomain-1}]; requires
    [domain <= codomain].  Used to hide [n] true users among [n + n']
    identifiers (Sec. 5.2 fake-user padding). *)

val of_array : int array -> t
(** Validate an explicit permutation (raises [Invalid_argument] if the
    array is not a bijection on its indices). *)
