module State = Spe_rng.State
module Cascade = Spe_actionlog.Cascade
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Attributes = Spe_influence.Attributes
module Em = Spe_influence.Em
module Credit = Spe_influence.Credit
module Correlation = Spe_stats.Correlation

type quality_row = {
  traces : int;
  eq1_mse : float;
  em_mse : float;
  em_iterations : int;
  shrunk_mse : float;
}

let quality_sweep ?(traces = [ 10; 50; 200; 800 ]) () =
  (* The grouping and graph are shared; only the trace budget varies. *)
  let base, grouping = Workloads.two_group ~seed:91 ~n:40 ~edges:300 ~actions:1 in
  let g = base.Workloads.graph in
  let truth = base.Workloads.planted.Cascade.probability in
  List.map
    (fun budget ->
      let rng = State.create ~seed:(92 + budget) () in
      let log =
        Cascade.generate rng base.Workloads.planted
          { Cascade.num_actions = budget; seeds_per_action = 2; max_delay = 2 }
      in
      let ct = Counters.compute_graph log ~h:2 g in
      let mse est = Attributes.mse_vs_truth ~estimates:est ~pairs:ct.Counters.pairs ~truth in
      let em = Em.learn log g ~h:2 ~max_iterations:50 in
      let em_est = Array.map (fun (u, v) -> Em.probability em u v) ct.Counters.pairs in
      {
        traces = budget;
        eq1_mse = mse (Link_strength.all_eq1 ct);
        em_mse = mse em_est;
        em_iterations = em.Em.iterations;
        shrunk_mse = mse (Attributes.shrunk_strengths ct grouping ~lambda:5.);
      })
    traces

type family_row = { name : string; spearman : float }

let family_comparison () =
  let rng = State.create ~seed:41 () in
  let g = Spe_graph.Generate.barabasi_albert rng ~n:50 ~m:3 in
  let planted = Cascade.random_probabilities rng ~lo:0.05 ~hi:0.5 g in
  let log =
    Cascade.generate rng planted { Cascade.num_actions = 400; seeds_per_action = 2; max_delay = 2 }
  in
  let ct = Counters.compute_graph log ~h:2 g in
  let truth = Array.map (fun (u, v) -> planted.Cascade.probability u v) ct.Counters.pairs in
  let score est = Correlation.spearman est truth in
  let pc = Credit.strengths log g ~h:2 in
  [
    { name = "Eq. 1"; spearman = score (Link_strength.all_eq1 ct) };
    { name = "Jaccard"; spearman = score (Link_strength.all_jaccard ct) };
    { name = "partial credit"; spearman = score (Array.of_list (List.map snd pc)) };
  ]

type perturbation_row = { epsilon : float; mean_abs_error : float }

let perturbation_sweep ?(epsilons = [ 0.1; 0.5; 1.; 5.; 20. ]) () =
  let w = Workloads.erdos_renyi ~seed:29 ~n:40 ~edges:240 ~actions:80 ~p:0.35 ~max_delay:2 () in
  let ct = Counters.compute_graph w.Workloads.log ~h:2 w.Workloads.graph in
  let exact = Link_strength.all_eq1 ct in
  List.map
    (fun epsilon ->
      let total = ref 0. and trials = 30 in
      for _ = 1 to trials do
        let noisy = Spe_privacy.Perturbation.perturbed_strengths w.Workloads.rng ~epsilon ct in
        Array.iteri (fun k p -> total := !total +. abs_float (p -. exact.(k))) noisy
      done;
      { epsilon; mean_abs_error = !total /. float_of_int (trials * Array.length exact) })
    epsilons

type generalisation_row = {
  traces : int;
  eq1_ll : float;
  em_ll : float;
  planted_ll : float;
}

let generalisation_sweep ?(traces = [ 10; 50; 200; 800 ]) () =
  let base = Workloads.erdos_renyi ~seed:97 ~n:30 ~edges:150 ~actions:1 ~p:0.35 ~max_delay:2 () in
  let g = base.Workloads.graph in
  let test_log =
    Cascade.generate (State.create ~seed:98 ()) base.Workloads.planted
      { Cascade.num_actions = 200; seeds_per_action = 2; max_delay = 2 }
  in
  let heldout probability =
    (Spe_influence.Evaluate.score ~probability test_log g ~h:2)
      .Spe_influence.Evaluate.log_likelihood
  in
  let planted_ll = heldout base.Workloads.planted.Cascade.probability in
  List.map
    (fun budget ->
      let rng = State.create ~seed:(99 + budget) () in
      let train =
        Cascade.generate rng base.Workloads.planted
          { Cascade.num_actions = budget; seeds_per_action = 2; max_delay = 2 }
      in
      let ct = Counters.compute_graph train ~h:2 g in
      let eq1 = Link_strength.all_eq1 ct in
      let table = Hashtbl.create 64 in
      Array.iteri (fun k pair -> Hashtbl.replace table pair eq1.(k)) ct.Counters.pairs;
      (* Unseen arcs fall back to a weak prior rather than impossible. *)
      let eq1_model u v = Option.value ~default:0.05 (Hashtbl.find_opt table (u, v)) in
      let em = Em.learn train g ~h:2 ~max_iterations:50 in
      let em_model u v =
        let p = Em.probability em u v in
        if p = 0. then 0.05 else p
      in
      { traces = budget; eq1_ll = heldout eq1_model; em_ll = heldout em_model; planted_ll })
    traces

type discretization_row = { step : int; episodes : int; mean_estimate : float }

let discretization_sweep ?(steps = [ 1; 5; 20; 60; 200 ]) () =
  let w =
    Workloads.erdos_renyi ~seed:37 ~n:40 ~edges:240 ~actions:200 ~p:0.35 ~max_delay:60 ()
  in
  List.map
    (fun step ->
      let binned = Spe_actionlog.Discretize.rebin w.Workloads.log ~step in
      let ct = Counters.compute_graph binned ~h:3 w.Workloads.graph in
      let est = Link_strength.all_eq1 ct in
      {
        step;
        episodes = Array.fold_left ( + ) 0 ct.Counters.b;
        mean_estimate = Array.fold_left ( +. ) 0. est /. float_of_int (Array.length est);
      })
    steps
