(** The estimator-quality experiments: every estimator in the library
    scored against planted ground truth on shared workloads.

    The bench prints these tables; the test suite asserts their
    qualitative claims (EM overfits sparse logs, shrinkage helps,
    perturbation error falls with epsilon), so EXPERIMENTS.md's
    narrative is enforced mechanically. *)

type quality_row = {
  traces : int;  (** Number of propagation traces in the log. *)
  eq1_mse : float;
  em_mse : float;
  em_iterations : int;
  shrunk_mse : float;  (** Attribute shrinkage at lambda = 5. *)
}

val quality_sweep : ?traces:int list -> unit -> quality_row list
(** The two-group workload at increasing trace budgets (default
    [10; 50; 200; 800]). *)

type family_row = {
  name : string;
  spearman : float;  (** Rank correlation with the planted truth. *)
}

val family_comparison : unit -> family_row list
(** Eq. 1, Jaccard and partial credit on a heterogeneous BA workload. *)

type perturbation_row = { epsilon : float; mean_abs_error : float }

val perturbation_sweep : ?epsilons:float list -> unit -> perturbation_row list
(** Laplace-perturbed Eq. 1 error against the exact estimates. *)

type generalisation_row = {
  traces : int;
  eq1_ll : float;  (** Held-out per-exposure log-likelihood, Eq. 1 model. *)
  em_ll : float;  (** Same for the EM-learned model. *)
  planted_ll : float;  (** Upper reference: the planted truth itself. *)
}

val generalisation_sweep : ?traces:int list -> unit -> generalisation_row list
(** The paper's accuracy motivation measured directly: train each
    estimator on a budget of traces, score on a fixed held-out trace
    set ({!Spe_influence.Evaluate}). *)

type discretization_row = {
  step : int;  (** Time-bin width. *)
  episodes : int;  (** Total window co-occurrences counted. *)
  mean_estimate : float;
}

val discretization_sweep : ?steps:int list -> unit -> discretization_row list
(** Fine-grained cascades (delays up to 60) counted at several bin
    widths — the Sec. 2 discretization remark. *)
