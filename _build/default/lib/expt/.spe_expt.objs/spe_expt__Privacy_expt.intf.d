lib/expt/privacy_expt.mli: Spe_privacy
