lib/expt/estimators.ml: Array Hashtbl List Option Spe_actionlog Spe_graph Spe_influence Spe_privacy Spe_rng Spe_stats Workloads
