lib/expt/comm_costs.ml: Array List Spe_actionlog Spe_core Spe_cost Spe_graph Spe_mpc Workloads
