lib/expt/privacy_expt.ml: Float List Spe_privacy Spe_rng
