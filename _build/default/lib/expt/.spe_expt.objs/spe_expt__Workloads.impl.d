lib/expt/workloads.ml: Array Spe_actionlog Spe_graph Spe_influence Spe_rng
