lib/expt/workloads.mli: Spe_actionlog Spe_graph Spe_influence Spe_rng
