lib/expt/estimators.mli:
