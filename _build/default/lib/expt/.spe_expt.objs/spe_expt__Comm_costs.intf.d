lib/expt/comm_costs.mli: Spe_cost Spe_mpc
