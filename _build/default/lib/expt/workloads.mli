(** Shared synthetic workloads for the evaluation harness and the
    integration tests.

    Every workload is deterministic in its seed, so bench output and
    EXPERIMENTS.md numbers are reproducible. *)

type t = {
  graph : Spe_graph.Digraph.t;
  log : Spe_actionlog.Log.t;  (** The unified log. *)
  planted : Spe_actionlog.Cascade.planted;  (** Ground truth. *)
  rng : Spe_rng.State.t;  (** Generator state after construction. *)
}

val erdos_renyi :
  seed:int -> n:int -> edges:int -> actions:int -> ?p:float -> ?max_delay:int -> unit -> t
(** Uniform planted probability [p] (default 0.25), 2 seeds per action,
    delays up to [max_delay] (default 3). *)

val barabasi_albert :
  seed:int -> n:int -> attach:int -> actions:int -> ?p:float -> unit -> t

val two_group :
  seed:int -> n:int -> edges:int -> actions:int ->
  t * Spe_influence.Attributes.grouping
(** The attribute-experiment workload: strong within-group influence
    (0.4), weak across (0.05). *)

val split_exclusive : t -> m:int -> Spe_actionlog.Log.t array
(** Exclusive provider split using the workload's generator state. *)

val split_graph : t -> hosts:int -> Spe_graph.Digraph.t array
(** Random arc split across several hosts (multi-host experiments). *)
