module State = Spe_rng.State
module Gain = Spe_privacy.Gain
module Posterior = Spe_privacy.Posterior
module Leakage = Spe_privacy.Leakage

type figure1_row = { prior_name : string; result : Gain.result }

let figure1 ?(trials_per_x = 1000) () =
  List.map
    (fun (prior_name, prior) ->
      let s = State.create ~seed:42 () in
      { prior_name; result = Gain.run s ~prior ~trials_per_x })
    [
      ("uniform on {0..10}", Posterior.uniform_prior ~bound:10);
      ("unimodal (peak at 5)", Posterior.unimodal_prior ~bound:10);
    ]

type leakage_row = { x : int; theory : Leakage.rates; observed : Leakage.observed }

let theorem41 ?(trials = 20_000) () =
  let s = State.create ~seed:7 () in
  let modulus = 1 lsl 10 and input_bound = 100 in
  List.map
    (fun x ->
      {
        x;
        theory = Leakage.theoretical ~modulus ~input_bound ~x;
        observed = Leakage.monte_carlo s ~modulus ~input_bound ~x ~trials;
      })
    [ 0; 25; 50; 75; 100 ]

let max_rate_deviation row =
  let rate hits = float_of_int hits /. float_of_int row.observed.Leakage.trials in
  Float.max
    (abs_float (rate row.observed.Leakage.p2_lower_hits -. row.theory.Leakage.p2_lower))
    (abs_float (rate row.observed.Leakage.p2_upper_hits -. row.theory.Leakage.p2_upper))
