module State = Spe_rng.State
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Attributes = Spe_influence.Attributes

type t = {
  graph : Digraph.t;
  log : Spe_actionlog.Log.t;
  planted : Cascade.planted;
  rng : State.t;
}

let build rng graph planted ~actions ~max_delay =
  let log =
    Cascade.generate rng planted
      { Cascade.num_actions = actions; seeds_per_action = 2; max_delay }
  in
  { graph; log; planted; rng }

let erdos_renyi ~seed ~n ~edges ~actions ?(p = 0.25) ?(max_delay = 3) () =
  let rng = State.create ~seed () in
  let graph = Generate.erdos_renyi_gnm rng ~n ~m:edges in
  build rng graph (Cascade.uniform_probabilities ~p graph) ~actions ~max_delay

let barabasi_albert ~seed ~n ~attach ~actions ?(p = 0.3) () =
  let rng = State.create ~seed () in
  let graph = Generate.barabasi_albert rng ~n ~m:attach in
  build rng graph (Cascade.uniform_probabilities ~p graph) ~actions ~max_delay:3

let two_group ~seed ~n ~edges ~actions =
  let rng = State.create ~seed () in
  let graph = Generate.erdos_renyi_gnm rng ~n ~m:edges in
  let grouping = Attributes.random_grouping rng ~n ~num_groups:2 in
  let truth u v =
    if grouping.Attributes.group_of.(u) = grouping.Attributes.group_of.(v) then 0.4 else 0.05
  in
  let planted = { Cascade.graph; probability = truth } in
  (build rng graph planted ~actions ~max_delay:2, grouping)

let split_exclusive t ~m = Partition.exclusive t.rng t.log ~m

let split_graph t ~hosts =
  let buckets = Array.make hosts [] in
  Digraph.iter_edges t.graph (fun u v ->
      let j = State.next_int t.rng hosts in
      buckets.(j) <- (u, v) :: buckets.(j));
  Array.map (fun arcs -> Digraph.create ~n:(Digraph.n t.graph) arcs) buckets
