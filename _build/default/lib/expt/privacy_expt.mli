(** Figure 1 and the Theorem 4.1 experiment as typed functions, so the
    bench prints them and the tests pin their claims. *)

type figure1_row = {
  prior_name : string;
  result : Spe_privacy.Gain.result;
}

val figure1 : ?trials_per_x:int -> unit -> figure1_row list
(** The Sec. 7.2 experiment on the paper's two priors (A = 10,
    default 1000 trials per x, seed fixed). *)

type leakage_row = {
  x : int;
  theory : Spe_privacy.Leakage.rates;
  observed : Spe_privacy.Leakage.observed;
}

val theorem41 : ?trials:int -> unit -> leakage_row list
(** Monte-Carlo vs closed form at S = 2^10, A = 100,
    x in {0, 25, 50, 75, 100} (default 20000 trials per x). *)

val max_rate_deviation : leakage_row -> float
(** Largest absolute gap between a measured P2 rate and its theory
    value — the quantity the tests bound by Monte-Carlo noise. *)
