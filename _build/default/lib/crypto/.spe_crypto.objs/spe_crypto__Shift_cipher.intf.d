lib/crypto/shift_cipher.mli: Spe_rng
