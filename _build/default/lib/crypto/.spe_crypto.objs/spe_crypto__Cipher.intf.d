lib/crypto/cipher.mli: Spe_bignum Spe_rng
