lib/crypto/prime.ml: Array List Spe_bignum Spe_rng
