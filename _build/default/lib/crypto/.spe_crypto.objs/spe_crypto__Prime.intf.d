lib/crypto/prime.mli: Spe_bignum Spe_rng
