lib/crypto/paillier.ml: Prime Spe_bignum
