lib/crypto/shift_cipher.ml: Spe_rng
