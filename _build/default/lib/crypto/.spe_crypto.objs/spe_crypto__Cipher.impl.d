lib/crypto/cipher.ml: Paillier Rsa Spe_bignum Spe_rng
