lib/crypto/paillier.mli: Spe_bignum Spe_rng
