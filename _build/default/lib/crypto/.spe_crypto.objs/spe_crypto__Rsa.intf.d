lib/crypto/rsa.mli: Spe_bignum Spe_rng
