lib/crypto/rsa.ml: Prime Spe_bignum
