(** A uniform interface over the public-key schemes, as used by
    Protocol 6.

    The protocol encrypts small non-negative integers (time-difference
    labels).  This module packages a scheme as a pair of closures plus
    the two size constants that feed the Table 2 cost model: the
    ciphertext size [z] and the public-key size [|kappa|]. *)

type public = {
  encrypt_int : int -> Spe_bignum.Nat.t;
      (** Encrypt a small non-negative integer. *)
  ciphertext_bits : int;  (** The paper's [z]. *)
  key_bits : int;  (** The paper's [|kappa|]. *)
}

type t = {
  public : public;
  decrypt_int : Spe_bignum.Nat.t -> int;
      (** Recover a small integer; raises [Failure] if the plaintext
          does not fit in a native [int]. *)
}

val rsa : Spe_rng.State.t -> bits:int -> t
(** Textbook RSA of the given modulus size (the paper's recommended
    deployment uses 1024). *)

val paillier : Spe_rng.State.t -> bits:int -> t
(** Probabilistic Paillier; ciphertexts are twice the modulus size.
    Fresh encryption randomness is drawn from a generator split off the
    one supplied here. *)
