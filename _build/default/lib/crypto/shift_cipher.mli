(** Shift cipher on time stamps (Sec. 5.2, "enhanced obfuscation").

    Protocol 5's enhanced obfuscation encrypts every time stamp with
    [t -> t + s mod period] for a secret shift [s], where the period is
    [T + h] (the observation horizon plus the memory window).  The
    third party can still test the window condition
    [t < t' <= t + h] on ciphertexts by checking membership of
    [e(t')] in [{e(t) + tau mod period : 1 <= tau <= h}], which is what
    {!follows_within} implements. *)

type t
(** A keyed shift cipher with a fixed period. *)

val create : key:int -> period:int -> t
(** Raises [Invalid_argument] unless [0 <= key < period] and
    [period > 0]. *)

val random : Spe_rng.State.t -> period:int -> t
(** Uniformly random key. *)

val key : t -> int
val period : t -> int

val encrypt : t -> int -> int
(** Raises [Invalid_argument] if the time stamp is outside
    [[0, period)]. *)

val decrypt : t -> int -> int

val follows_within : t -> h:int -> int -> int -> bool
(** [follows_within c ~h e1 e2] decides, on ciphertexts alone, whether
    the plaintext of [e2] lies in the window [(t1, t1 + h]] modulo the
    period, where [t1] is the plaintext of [e1] — the membership test
    from Sec. 5.2, inequality (12). *)
