module Nat = Spe_bignum.Nat
module Bigint = Spe_bignum.Bigint
module Montgomery = Spe_bignum.Montgomery

type public = { n : Nat.t; e : Nat.t }
type secret = { n : Nat.t; d : Nat.t }
type keypair = { public : public; secret : secret }

let generate ?(e = 65537) st ~bits =
  if bits < 16 then invalid_arg "Rsa.generate: modulus must be at least 16 bits";
  let e_nat = Nat.of_int e in
  let half = bits / 2 in
  let coprime_to_e p = Nat.is_one (Nat.gcd (Nat.pred p) e_nat) in
  let p = Prime.random_odd_prime_with st ~bits:half coprime_to_e in
  let rec draw_q () =
    let q = Prime.random_odd_prime_with st ~bits:(bits - half) coprime_to_e in
    if Nat.equal p q then draw_q () else q
  in
  let q = draw_q () in
  let n = Nat.mul p q in
  let phi = Nat.mul (Nat.pred p) (Nat.pred q) in
  let d =
    match Bigint.mod_inv (Bigint.of_nat e_nat) (Bigint.of_nat phi) with
    | Some d -> Bigint.to_nat d
    | None -> assert false (* primes were drawn coprime to e *)
  in
  { public = { n; e = e_nat }; secret = { n; d } }

(* RSA moduli are odd, so Montgomery exponentiation applies. *)
let encrypt (pk : public) m =
  if Nat.compare m pk.n >= 0 then invalid_arg "Rsa.encrypt: plaintext exceeds modulus";
  Montgomery.pow (Montgomery.create pk.n) ~base:m ~exp:pk.e

let decrypt (sk : secret) c = Montgomery.pow (Montgomery.create sk.n) ~base:c ~exp:sk.d

let ciphertext_bits (pk : public) = Nat.bit_length pk.n

let public_key_bits (pk : public) = Nat.bit_length pk.n + Nat.bit_length pk.e
