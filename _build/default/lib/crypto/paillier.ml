module Nat = Spe_bignum.Nat
module Bigint = Spe_bignum.Bigint
module Montgomery = Spe_bignum.Montgomery

type public = { n : Nat.t; n_squared : Nat.t }
type secret = { n : Nat.t; n_squared : Nat.t; lambda : Nat.t; mu : Nat.t }
type keypair = { public : public; secret : secret }

(* L(x) = (x - 1) / n, defined on x = 1 mod n. *)
let ell ~n x = Nat.div (Nat.pred x) n

let generate st ~bits =
  if bits < 16 then invalid_arg "Paillier.generate: modulus must be at least 16 bits";
  let half = bits / 2 in
  let rec keys () =
    let p = Prime.random_prime st ~bits:half in
    let rec draw_q () =
      let q = Prime.random_prime st ~bits:(bits - half) in
      if Nat.equal p q then draw_q () else q
    in
    let q = draw_q () in
    let n = Nat.mul p q in
    let lambda = Nat.mul (Nat.pred p) (Nat.pred q) in
    if not (Nat.is_one (Nat.gcd n lambda)) then keys ()
    else begin
      let n_squared = Nat.mul n n in
      (* g = n + 1: mu = (L(g^lambda mod n^2))^-1 mod n = lambda^-1 mod n. *)
      match Bigint.mod_inv (Bigint.of_nat lambda) (Bigint.of_nat n) with
      | None -> keys ()
      | Some mu ->
        let mu = Bigint.to_nat mu in
        { public = { n; n_squared }; secret = { n; n_squared; lambda; mu } }
    end
  in
  keys ()

let encrypt st (pk : public) m =
  if Nat.compare m pk.n >= 0 then invalid_arg "Paillier.encrypt: plaintext exceeds modulus";
  (* r uniform in [1, n) with gcd(r, n) = 1 (all but negligibly many). *)
  let rec draw_r () =
    let r = Nat.random_below st pk.n in
    if Nat.is_zero r || not (Nat.is_one (Nat.gcd r pk.n)) then draw_r () else r
  in
  let r = draw_r () in
  (* g^m = (1 + n)^m = 1 + m*n  (mod n^2). *)
  let g_m = Nat.rem (Nat.succ (Nat.mul m pk.n)) pk.n_squared in
  let r_n = Montgomery.pow (Montgomery.create pk.n_squared) ~base:r ~exp:pk.n in
  Nat.rem (Nat.mul g_m r_n) pk.n_squared

let decrypt (sk : secret) c =
  (* n^2 is odd: Montgomery applies. *)
  let x = Montgomery.pow (Montgomery.create sk.n_squared) ~base:c ~exp:sk.lambda in
  Nat.rem (Nat.mul (ell ~n:sk.n x) sk.mu) sk.n

let add (pk : public) c1 c2 = Nat.rem (Nat.mul c1 c2) pk.n_squared

let mul_plain (pk : public) c k =
  Montgomery.pow (Montgomery.create pk.n_squared) ~base:c ~exp:k

let ciphertext_bits (pk : public) = Nat.bit_length pk.n_squared
