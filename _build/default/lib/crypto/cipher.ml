module Nat = Spe_bignum.Nat

type public = {
  encrypt_int : int -> Nat.t;
  ciphertext_bits : int;
  key_bits : int;
}

type t = { public : public; decrypt_int : Nat.t -> int }

let check_plain m = if m < 0 then invalid_arg "Cipher.encrypt_int: negative plaintext"

let rsa st ~bits =
  let kp = Rsa.generate st ~bits in
  let encrypt_int m =
    check_plain m;
    Rsa.encrypt kp.Rsa.public (Nat.of_int m)
  in
  let decrypt_int c = Nat.to_int_exn (Rsa.decrypt kp.Rsa.secret c) in
  {
    public =
      {
        encrypt_int;
        ciphertext_bits = Rsa.ciphertext_bits kp.Rsa.public;
        key_bits = Rsa.public_key_bits kp.Rsa.public;
      };
    decrypt_int;
  }

let paillier st ~bits =
  let kp = Paillier.generate st ~bits in
  let enc_rng = Spe_rng.State.split st in
  let encrypt_int m =
    check_plain m;
    Paillier.encrypt enc_rng kp.Paillier.public (Nat.of_int m)
  in
  let decrypt_int c = Nat.to_int_exn (Paillier.decrypt kp.Paillier.secret c) in
  {
    public =
      {
        encrypt_int;
        ciphertext_bits = Paillier.ciphertext_bits kp.Paillier.public;
        key_bits = Nat.bit_length kp.Paillier.public.Paillier.n;
      };
    decrypt_int;
  }
