(** Textbook RSA over {!Spe_bignum}.

    Protocol 6 has the host [H] publish a public key; providers encrypt
    their per-action time-difference vectors under it and only [H] can
    decrypt (Steps 3-11).  The paper quotes a recommended ciphertext
    size of z = 1024 bits for RSA, which is the constant that drives
    Table 2's message sizes.

    This is deterministic ("textbook") RSA — no OAEP padding.  In the
    protocol each plaintext is already blinded inside a batched message
    and the semi-honest threat model only requires that parties without
    the private key learn nothing they could not compute; for a
    hardened deployment, swap in {!Paillier} (probabilistic) via the
    shared {!Cipher} interface. *)

type public = { n : Spe_bignum.Nat.t; e : Spe_bignum.Nat.t }
(** Modulus and public exponent. *)

type secret = { n : Spe_bignum.Nat.t; d : Spe_bignum.Nat.t }
(** Modulus and private exponent. *)

type keypair = { public : public; secret : secret }

val generate : ?e:int -> Spe_rng.State.t -> bits:int -> keypair
(** [generate st ~bits] draws two [bits/2]-bit primes and returns a
    keypair with a [bits]-sized modulus.  Default exponent 65537; the
    primes are re-drawn until coprimality with [e] holds.  [bits] must
    be at least 16. *)

val encrypt : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [encrypt pk m] is [m^e mod n].  Raises [Invalid_argument] if
    [m >= n]. *)

val decrypt : secret -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [decrypt sk c] is [c^d mod n]. *)

val ciphertext_bits : public -> int
(** Size in bits of a ciphertext under this key — the paper's [z]. *)

val public_key_bits : public -> int
(** Serialized public-key size in bits (|n| + |e|) — the paper's
    [|kappa|]. *)
