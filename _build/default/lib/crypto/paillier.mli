(** The Paillier cryptosystem: probabilistic, additively homomorphic
    public-key encryption.

    The paper's Protocol 6 only needs plain public-key encryption (RSA
    suffices), but its related-work section points at homomorphic
    schemes as the tool for field-style secure division; Paillier is
    included both as the probabilistic alternative to textbook RSA and
    as the substrate for the homomorphic-aggregation extension
    exercised in the examples: providers can sum encrypted counters
    under the host's key without decrypting.

    Keys use the standard simplification [g = n + 1], so encryption is
    [c = (1 + m*n) * r^n mod n^2] and decryption uses
    [L(x) = (x - 1) / n] with [L(c^lambda mod n^2) * mu mod n]. *)

type public = { n : Spe_bignum.Nat.t; n_squared : Spe_bignum.Nat.t }

type secret = {
  n : Spe_bignum.Nat.t;
  n_squared : Spe_bignum.Nat.t;
  lambda : Spe_bignum.Nat.t;
  mu : Spe_bignum.Nat.t;
}

type keypair = { public : public; secret : secret }

val generate : Spe_rng.State.t -> bits:int -> keypair
(** [generate st ~bits] builds a keypair with a [bits]-sized modulus
    from two primes of [bits/2] bits each, redrawn until
    [gcd(n, (p-1)(q-1)) = 1] (guaranteed for same-size primes). *)

val encrypt : Spe_rng.State.t -> public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** Probabilistic encryption: fresh randomness per call.  Raises
    [Invalid_argument] if the plaintext is [>= n]. *)

val decrypt : secret -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t

val add : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** Homomorphic addition: [decrypt (add pk c1 c2) = m1 + m2 mod n]. *)

val mul_plain : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** Homomorphic plaintext multiplication:
    [decrypt (mul_plain pk c k) = k * m mod n]. *)

val ciphertext_bits : public -> int
(** Ciphertexts live modulo [n^2]: twice the modulus size. *)
