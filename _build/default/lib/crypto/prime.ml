module Nat = Spe_bignum.Nat
module State = Spe_rng.State

let small_primes =
  (* Sieve of Eratosthenes below 1000, computed once at load time. *)
  let limit = 1000 in
  let composite = Array.make (limit + 1) false in
  let primes = ref [] in
  for i = 2 to limit do
    if not composite.(i) then begin
      primes := i :: !primes;
      let j = ref (i * i) in
      while !j <= limit do
        composite.(!j) <- true;
        j := !j + i
      done
    end
  done;
  Array.of_list (List.rev !primes)

(* [None] = passes trial division; [Some b] = verdict [b]. *)
let trial_division n =
  match Nat.to_int n with
  | Some v when v < 2 -> Some false
  | _ ->
    let exception Verdict of bool in
    (try
       Array.iter
         (fun p ->
           let np = Nat.of_int p in
           if Nat.compare n np = 0 then raise (Verdict true)
           else if Nat.is_zero (Nat.rem n np) then raise (Verdict false))
         small_primes;
       None
     with Verdict b -> Some b)

let miller_rabin_round st n =
  (* n odd, n > 3.  Write n - 1 = 2^s * d with d odd. *)
  let n_minus_1 = Nat.pred n in
  let rec strip d s = if Nat.is_even d then strip (Nat.shift_right d 1) (s + 1) else (d, s) in
  let d, s = strip n_minus_1 0 in
  (* Base a uniform in [2, n - 2]. *)
  let a = Nat.add Nat.two (Nat.random_below st (Nat.sub n (Nat.of_int 3))) in
  let x = Nat.mod_pow ~base:a ~exp:d ~modulus:n in
  if Nat.is_one x || Nat.equal x n_minus_1 then true
  else begin
    let rec square_loop x i =
      if i >= s - 1 then false
      else
        let x = Nat.rem (Nat.mul x x) n in
        if Nat.equal x n_minus_1 then true else square_loop x (i + 1)
    in
    square_loop x 0
  end

let is_prime ?(rounds = 20) st n =
  match trial_division n with
  | Some verdict -> verdict
  | None ->
    let rec loop i = i >= rounds || (miller_rabin_round st n && loop (i + 1)) in
    loop 0

let random_prime ?rounds st ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: need at least 2 bits";
  let rec loop () =
    let c = Nat.random_bits_exact st bits in
    (* Force odd (2 is the only even prime and has 2 bits; catch it via
       the retry loop rather than special-casing). *)
    let c = if Nat.is_even c then Nat.succ c else c in
    if Nat.bit_length c = bits && is_prime ?rounds st c then c else loop ()
  in
  loop ()

let random_odd_prime_with st ~bits accept =
  let rec loop () =
    let p = random_prime st ~bits in
    if accept p then p else loop ()
  in
  loop ()
