(** Primality testing and random prime generation.

    Protocol 6 requires a public-key cryptosystem; its moduli are built
    from random primes produced here.  Candidates are screened by trial
    division against a table of small primes, then subjected to
    Miller-Rabin with independently drawn bases.  For the b-bit sizes
    used in this repository (up to 1024-bit moduli) 20 rounds give a
    failure probability far below 4^-20. *)

val small_primes : int array
(** The primes below 1000, used for trial division. *)

val is_prime : ?rounds:int -> Spe_rng.State.t -> Spe_bignum.Nat.t -> bool
(** Miller-Rabin with the given number of rounds (default 20).
    Deterministic and exact for inputs below 1000^2 (covered by the
    trial-division table). *)

val random_prime : ?rounds:int -> Spe_rng.State.t -> bits:int -> Spe_bignum.Nat.t
(** A random prime of exactly [bits] bits ([bits >= 2]).  The top bit
    is forced so products of two such primes have predictable size. *)

val random_odd_prime_with : Spe_rng.State.t -> bits:int ->
  (Spe_bignum.Nat.t -> bool) -> Spe_bignum.Nat.t
(** [random_odd_prime_with st ~bits accept] draws random primes of the
    requested size until [accept] holds (e.g. congruence conditions for
    RSA key generation). *)
