type t = { key : int; period : int }

let create ~key ~period =
  if period <= 0 then invalid_arg "Shift_cipher.create: period must be positive";
  if key < 0 || key >= period then invalid_arg "Shift_cipher.create: key out of range";
  { key; period }

let random st ~period =
  if period <= 0 then invalid_arg "Shift_cipher.random: period must be positive";
  { key = Spe_rng.State.next_int st period; period }

let key c = c.key
let period c = c.period

let encrypt c t =
  if t < 0 || t >= c.period then invalid_arg "Shift_cipher.encrypt: time stamp out of range";
  (t + c.key) mod c.period

let decrypt c e =
  if e < 0 || e >= c.period then invalid_arg "Shift_cipher.decrypt: ciphertext out of range";
  (e - c.key + c.period) mod c.period

let follows_within c ~h e1 e2 =
  if h < 0 then invalid_arg "Shift_cipher.follows_within: negative window";
  let diff = (e2 - e1 + c.period) mod c.period in
  diff >= 1 && diff <= h
