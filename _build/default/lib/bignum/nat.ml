(* Little-endian arrays of base-2^30 limbs, normalised: no trailing
   zero limbs, zero is the empty array.  All limb products fit in the
   63-bit native int: (2^30 - 1)^2 + 2 * 2^30 < 2^62. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1
let is_even a = Array.length a = 0 || a.(0) land 1 = 0
let num_limbs a = Array.length a

(* Trim trailing zero limbs; shares the input when already normal. *)
let norm (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int x =
  if x < 0 then invalid_arg "Nat.of_int: negative";
  if x = 0 then zero
  else begin
    let rec count v acc = if v = 0 then acc else count (v lsr limb_bits) (acc + 1) in
    let n = count x 0 in
    let a = Array.make n 0 in
    let v = ref x in
    for i = 0 to n - 1 do
      a.(i) <- !v land limb_mask;
      v := !v lsr limb_bits
    done;
    a
  end

let to_int a =
  (* max_int holds just over two limbs (62 bits = 2*30 + 2). *)
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl limb_bits) lor a.(0))
  | 3 when a.(2) < 4 -> Some ((a.(2) lsl (2 * limb_bits)) lor (a.(1) lsl limb_bits) lor a.(0))
  | _ -> None

let to_int_exn a =
  match to_int a with
  | Some v -> v
  | None -> failwith "Nat.to_int_exn: value exceeds max_int"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  norm r

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: negative result";
  norm r

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land limb_mask;
          carry := p lsr limb_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    norm r
  end

let karatsuba_threshold = 32

(* Split [a] at limb [k] into (low, high). *)
let split_at (a : t) k =
  let n = Array.length a in
  if n <= k then (a, zero)
  else (norm (Array.sub a 0 k), Array.sub a k (n - k))

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if min la lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (sub (mul (add a0 a1) (add b0 b1)) z0) z2 in
    let shift_limbs x s =
      if is_zero x then zero
      else begin
        let n = Array.length x in
        let r = Array.make (n + s) 0 in
        Array.blit x 0 r s n;
        r
      end
    in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

let shift_left (a : t) bits =
  if bits < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let n = Array.length a in
    let r = Array.make (n + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift n
    else begin
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      r.(n + limb_shift) <- !carry
    end;
    norm r
  end

let shift_right (a : t) bits =
  if bits < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let n = Array.length a in
    if limb_shift >= n then zero
    else begin
      let m = n - limb_shift in
      let r = Array.make m 0 in
      if bit_shift = 0 then Array.blit a limb_shift r 0 m
      else
        for i = 0 to m - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi = if i + limb_shift + 1 < n then a.(i + limb_shift + 1) lsl (limb_bits - bit_shift) else 0 in
          r.(i) <- (lo lor hi) land limb_mask
        done;
      norm r
    end
  end

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let test_bit (a : t) i =
  if i < 0 then invalid_arg "Nat.test_bit: negative index";
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

(* Division by a single limb; returns (quotient, remainder-as-int). *)
let divmod_small (u : t) d =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_small: divisor out of limb range";
  let n = Array.length u in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor u.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (norm q, !r)

(* Knuth TAOCP vol. 2, Algorithm 4.3.1-D.  [v] has >= 2 limbs. *)
let divmod_knuth (u : t) (v : t) =
  let n = Array.length v in
  (* Normalise so the top limb of v is >= base/2. *)
  let rec top_width x acc = if x = 0 then acc else top_width (x lsr 1) (acc + 1) in
  let s = limb_bits - top_width v.(n - 1) 0 in
  let vn = shift_left v s in
  let un_t = shift_left u s in
  let lu = Array.length un_t in
  let m = lu - n in
  (* Working copy with one extra high limb. *)
  let w = Array.make (lu + 1) 0 in
  Array.blit un_t 0 w 0 lu;
  let q = Array.make (m + 1) 0 in
  let vtop = vn.(n - 1) and vnext = vn.(n - 2) in
  for j = m downto 0 do
    let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    let continue = ref true in
    while !continue do
      if !qhat >= base || !qhat * vnext > ((!rhat lsl limb_bits) lor w.(j + n - 2)) then begin
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* Multiply-subtract qhat * vn from w[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = w.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin w.(i + j) <- d + base; borrow := 1 end
      else begin w.(i + j) <- d; borrow := 0 end
    done;
    let d = w.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add vn back. *)
      w.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let sum = w.(i + j) + vn.(i) + !c in
        w.(i + j) <- sum land limb_mask;
        c := sum lsr limb_bits
      done;
      w.(j + n) <- (w.(j + n) + !c) land limb_mask
    end
    else w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = shift_right (norm (Array.sub w 0 n)) s in
  (norm q, r)

let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let succ a = add a one
let pred a = sub a one

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let lcm a b = if is_zero a || is_zero b then zero else mul (div a (gcd a b)) b

let isqrt n =
  if is_zero n then zero
  else begin
    (* Newton iteration x' = (x + n/x) / 2 from an over-estimate
       converges monotonically down to floor(sqrt n). *)
    let x0 = shift_left one ((bit_length n + 1) / 2) in
    let rec refine x =
      let x' = shift_right (add x (div n x)) 1 in
      if compare x' x < 0 then refine x' else x
    in
    refine x0
  end

let is_square n =
  let r = isqrt n in
  equal (mul r r) n

let pow base exponent =
  if exponent < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one base exponent

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if is_one modulus then zero
  else begin
    let b = rem b modulus in
    let result = ref one in
    let nbits = bit_length exp in
    for i = nbits - 1 downto 0 do
      result := rem (mul !result !result) modulus;
      if test_bit exp i then result := rem (mul !result b) modulus
    done;
    !result
  end

let to_string a =
  if is_zero a then "0"
  else begin
    (* Peel 9 decimal digits at a time: 10^9 < 2^30. *)
    let chunk = 1_000_000_000 in
    let buf = Buffer.create 32 in
    let rec peel x acc =
      if is_zero x then acc
      else
        let q, r = divmod_small x chunk in
        peel q (r :: acc)
    in
    match peel a [] with
    | [] -> "0"
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "%09d" r)) rest;
      Buffer.contents buf
  end

let of_string s =
  if String.length s = 0 then invalid_arg "Nat.of_string: empty string";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a decimal digit")
    s;
  (* Consume 9-digit chunks: acc = acc * 10^k + chunk. *)
  let n = String.length s in
  let acc = ref zero in
  let pos = ref 0 in
  while !pos < n do
    let len = min 9 (n - !pos) in
    let chunk = int_of_string (String.sub s !pos len) in
    let pow10 = int_of_float (10. ** float_of_int len) in
    acc := add (mul !acc (of_int pow10)) (of_int chunk);
    pos := !pos + len
  done;
  !acc

let to_hex a =
  if is_zero a then "0"
  else begin
    let nb = bit_length a in
    let ndigits = (nb + 3) / 4 in
    let buf = Buffer.create ndigits in
    for d = ndigits - 1 downto 0 do
      let v = ref 0 in
      for bit = 3 downto 0 do
        v := (!v lsl 1) lor (if test_bit a ((d * 4) + bit) then 1 else 0)
      done;
      Buffer.add_char buf "0123456789abcdef".[!v]
    done;
    Buffer.contents buf
  end

let of_hex s =
  if String.length s = 0 then invalid_arg "Nat.of_hex: empty string";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: not a hex digit"
  in
  String.fold_left (fun acc c -> add (shift_left acc 4) (of_int (digit c))) zero s

let pp fmt a = Format.pp_print_string fmt (to_string a)

let random_bits st k =
  if k < 0 then invalid_arg "Nat.random_bits: negative bit count";
  if k = 0 then zero
  else begin
    let nlimbs = (k + limb_bits - 1) / limb_bits in
    let a = Array.make nlimbs 0 in
    for i = 0 to nlimbs - 1 do
      a.(i) <- Spe_rng.State.next_bits st limb_bits
    done;
    let top_bits = k - ((nlimbs - 1) * limb_bits) in
    a.(nlimbs - 1) <- a.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    norm a
  end

let random_bits_exact st k =
  if k <= 0 then invalid_arg "Nat.random_bits_exact: bit count must be positive";
  let a = random_bits st k in
  (* Force the top bit so the value has exactly k bits. *)
  let limb = (k - 1) / limb_bits and bit = (k - 1) mod limb_bits in
  let n = max (Array.length a) (limb + 1) in
  let r = Array.make n 0 in
  Array.blit a 0 r 0 (Array.length a);
  r.(limb) <- r.(limb) lor (1 lsl bit);
  norm r

let to_limbs a ~width =
  if Array.length a > width then invalid_arg "Nat.to_limbs: width too small";
  let out = Array.make width 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

let of_limbs a = norm (Array.copy a)

let random_below st bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let k = bit_length bound in
  let rec loop () =
    let c = random_bits st k in
    if compare c bound < 0 then c else loop ()
  in
  loop ()
