lib/bignum/nat.ml: Array Buffer Char Format List Printf Spe_rng Stdlib String
