lib/bignum/nat.mli: Format Spe_rng
