type t = { sign : int; mag : Nat.t }
(* Invariant: sign ∈ {-1, 0, 1}; sign = 0 iff mag = 0. *)

let make sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }

let of_int x =
  if x = 0 then zero
  else if x > 0 then { sign = 1; mag = Nat.of_int x }
  else if x = min_int then invalid_arg "Bigint.of_int: min_int not supported"
  else { sign = -1; mag = Nat.of_int (-x) }

let to_int a =
  match Nat.to_int a.mag with
  | None -> None
  | Some m -> Some (if a.sign < 0 then -m else m)

let to_int_exn a =
  match to_int a with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: value exceeds int range"

let of_nat n = make 1 n

let to_nat a =
  if a.sign < 0 then invalid_arg "Bigint.to_nat: negative value";
  a.mag

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else make 1 (Nat.of_string s)

let to_string a = if a.sign < 0 then "-" ^ Nat.to_string a.mag else Nat.to_string a.mag

let pp fmt a = Format.pp_print_string fmt (to_string a)

let sign a = a.sign
let neg a = { a with sign = -a.sign }
let abs a = { a with sign = Stdlib.abs a.sign }
let is_zero a = a.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = Nat.add a.mag b.mag }
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = Nat.sub a.mag b.mag }
    else { sign = b.sign; mag = Nat.sub b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = Nat.mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let egcd a b =
  (* Iterative extended Euclid on the magnitudes, signs fixed at the
     end: gcd(|a|,|b|) = u0*|a| + v0*|b|. *)
  let rec go r0 r1 u0 u1 v0 v1 =
    if is_zero r1 then (r0, u0, v0)
    else
      let q, r2 = divmod r0 r1 in
      go r1 r2 u1 (sub u0 (mul q u1)) v1 (sub v0 (mul q v1))
  in
  let g, u, v = go (abs a) (abs b) one zero zero one in
  let u = if a.sign < 0 then neg u else u in
  let v = if b.sign < 0 then neg v else v in
  (g, u, v)

let mod_inv a m =
  if m.sign <= 0 then invalid_arg "Bigint.mod_inv: modulus must be positive";
  let g, u, _ = egcd a m in
  if equal g one then Some (erem u m) else None

let mod_pow ~base ~exp ~modulus =
  if modulus.sign <= 0 then invalid_arg "Bigint.mod_pow: modulus must be positive";
  let b = erem base modulus in
  of_nat (Nat.mod_pow ~base:(to_nat b) ~exp ~modulus:(to_nat modulus))
