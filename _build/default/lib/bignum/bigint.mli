(** Arbitrary-precision signed integers built on {!Nat}.

    Sign-magnitude representation with a canonical zero (never a
    "negative zero").  Division truncates toward zero ({!divmod}), and
    {!erem} gives the Euclidean (always non-negative) remainder needed
    by the modular protocols. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int : t -> int option
val to_int_exn : t -> int

val of_nat : Nat.t -> t
val to_nat : t -> Nat.t
(** Raises [Invalid_argument] on negative values. *)

val of_string : string -> t
(** Optional leading ['-'], then decimal digits. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [a = q*b + r] with [|r| < |b|] and [r] carrying
    the sign of [a].  Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder: [erem a b] is in [[0, |b|)].  Raises
    [Division_by_zero]. *)

val egcd : t -> t -> t * t * t
(** [egcd a b] is [(g, u, v)] with [g = gcd(|a|, |b|) = u*a + v*b],
    [g >= 0]. *)

val mod_inv : t -> t -> t option
(** [mod_inv a m] is the inverse of [a] modulo [m] in [[0, m)], if
    [gcd(a, m) = 1].  [m] must be positive. *)

val mod_pow : base:t -> exp:Nat.t -> modulus:t -> t
(** [base^exp mod modulus] with a non-negative result; [modulus] must
    be positive. *)
