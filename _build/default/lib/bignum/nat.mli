(** Arbitrary-precision natural numbers.

    The container ships no Zarith, and Protocol 6 needs a public-key
    cryptosystem over 1024-bit (and larger) integers, so this module
    implements naturals from scratch: little-endian arrays of base-2^30
    limbs (limb products fit in OCaml's 63-bit native [int]).  Values
    are immutable and normalised — no trailing zero limbs; zero is the
    empty array.

    Complexity: addition/subtraction are linear; multiplication is
    schoolbook below {!karatsuba_threshold} limbs and Karatsuba above;
    division is Knuth's Algorithm D; [mod_pow] is left-to-right binary
    exponentiation with full reduction per step. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int option
(** [None] if the value exceeds [max_int]. *)

val to_int_exn : t -> int
(** Raises [Failure] if the value exceeds [max_int]. *)

val of_string : string -> t
(** Decimal digits, raises [Invalid_argument] on anything else. *)

val to_string : t -> string
(** Decimal representation without leading zeros. *)

val of_hex : string -> t
(** Hexadecimal digits (no [0x] prefix), case-insensitive. *)

val to_hex : t -> string
(** Lowercase hexadecimal without leading zeros. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t

val karatsuba_threshold : int
(** Limb count above which {!mul} switches to Karatsuba. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    Raises [Division_by_zero] if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool
(** [test_bit a i] is bit [i] (little-endian). *)

val num_limbs : t -> int
(** Limbs in the normalised representation ([0] for zero). *)

val succ : t -> t
val pred : t -> t
(** [pred zero] raises [Invalid_argument]. *)

val gcd : t -> t -> t

val lcm : t -> t -> t
(** Least common multiple; [lcm x zero = zero]. *)

val isqrt : t -> t
(** Integer square root: the largest [r] with [r * r <= n] (Newton's
    method). *)

val is_square : t -> bool

val pow : t -> int -> t
(** Plain integer power; raises [Invalid_argument] on negative
    exponents. *)

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** [mod_pow ~base ~exp ~modulus] is [base^exp mod modulus].  Raises
    [Division_by_zero] if [modulus] is zero; [mod_pow _ _ one = zero]. *)

val random_bits : Spe_rng.State.t -> int -> t
(** Uniform value with at most the given number of bits. *)

val random_below : Spe_rng.State.t -> t -> t
(** Uniform on [[0, bound)]; raises [Invalid_argument] on zero bound. *)

val random_bits_exact : Spe_rng.State.t -> int -> t
(** Uniform value of exactly the given bit length (top bit forced). *)

(**/**)

(* Limb-level access for the sibling [Montgomery] module: little-endian
   base-2^30 limbs.  Not part of the public API. *)
val limb_bits : int
val to_limbs : t -> width:int -> int array
(** Copy into a zero-padded array of exactly [width] limbs; raises
    [Invalid_argument] if the value needs more. *)

val of_limbs : int array -> t
(** Normalising constructor (copies). *)

(**/**)
