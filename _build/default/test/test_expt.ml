(* Tests over the experiment library: the quantitative claims recorded
   in EXPERIMENTS.md are asserted here, so `dune runtest` enforces the
   reproduction, not just the bench printout. *)

module Comm_costs = Spe_expt.Comm_costs
module Estimators = Spe_expt.Estimators
module Workloads = Spe_expt.Workloads
module Wire = Spe_mpc.Wire
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log

(* --- workloads -------------------------------------------------------------- *)

let test_workloads_deterministic () =
  let a = Workloads.erdos_renyi ~seed:5 ~n:20 ~edges:60 ~actions:10 () in
  let b = Workloads.erdos_renyi ~seed:5 ~n:20 ~edges:60 ~actions:10 () in
  Alcotest.(check bool) "same log" true (Log.equal a.Workloads.log b.Workloads.log);
  Alcotest.(check (list (pair int int))) "same graph" (Digraph.edges a.Workloads.graph)
    (Digraph.edges b.Workloads.graph)

let test_workloads_split_covers () =
  let w = Workloads.erdos_renyi ~seed:6 ~n:20 ~edges:60 ~actions:10 () in
  let logs = Workloads.split_exclusive w ~m:3 in
  Alcotest.(check int) "record count preserved"
    (Log.size w.Workloads.log)
    (Array.fold_left (fun acc l -> acc + Log.size l) 0 logs);
  let graphs = Workloads.split_graph w ~hosts:3 in
  Alcotest.(check int) "arcs preserved"
    (Digraph.edge_count w.Workloads.graph)
    (Array.fold_left (fun acc g -> acc + Digraph.edge_count g) 0 graphs)

(* --- table sweeps ------------------------------------------------------------ *)

let test_table1_sweep_all_match () =
  let rows = Comm_costs.table1_sweep () in
  Alcotest.(check int) "four settings" 4 (List.length rows);
  List.iter
    (fun (r : Comm_costs.row) ->
      if not r.Comm_costs.ok then
        Alcotest.failf "Table 1 mismatch at n=%d m=%d" r.Comm_costs.n r.Comm_costs.m;
      Alcotest.(check int) "NM formula" ((r.Comm_costs.m * r.Comm_costs.m) + r.Comm_costs.m + 7)
        r.Comm_costs.measured.Wire.messages)
    rows

let test_table2_sweep_all_match () =
  let rows = Comm_costs.table2_sweep () in
  List.iter
    (fun (r : Comm_costs.row) ->
      if not r.Comm_costs.ok then Alcotest.failf "Table 2 mismatch at m=%d" r.Comm_costs.m;
      Alcotest.(check int) "NM = 3m" (3 * r.Comm_costs.m) r.Comm_costs.measured.Wire.messages;
      Alcotest.(check int) "NR = 4" 4 r.Comm_costs.measured.Wire.rounds)
    rows

let test_table1_ms_scales_with_m_squared () =
  let rows = Comm_costs.table1_sweep () in
  let ms_at m =
    List.find (fun (r : Comm_costs.row) -> r.Comm_costs.m = m && r.Comm_costs.n = 100) rows
    |> fun r -> float_of_int r.Comm_costs.measured.Wire.bits
  in
  (* The m^2 share-exchange dominates: 3 -> 10 should grow by ~(100+10)/(9+3)-ish. *)
  Alcotest.(check bool) "superlinear growth" true (ms_at 10 /. ms_at 3 > 4.)

(* --- estimator claims ---------------------------------------------------------- *)

let test_em_overfits_sparse_but_wins_rich () =
  let rows = Estimators.quality_sweep ~traces:[ 10; 800 ] () in
  match rows with
  | [ sparse; rich ] ->
    Alcotest.(check bool)
      (Printf.sprintf "sparse: EM %.4f worse than Eq1 %.4f" sparse.Estimators.em_mse
         sparse.Estimators.eq1_mse)
      true
      (sparse.Estimators.em_mse > sparse.Estimators.eq1_mse);
    Alcotest.(check bool)
      (Printf.sprintf "rich: EM %.4f beats Eq1 %.4f" rich.Estimators.em_mse
         rich.Estimators.eq1_mse)
      true
      (rich.Estimators.em_mse < rich.Estimators.eq1_mse);
    Alcotest.(check bool) "shrinkage helps sparse" true
      (sparse.Estimators.shrunk_mse < sparse.Estimators.eq1_mse)
  | _ -> Alcotest.fail "unexpected row count"

let test_generalisation_converges () =
  let rows = Estimators.generalisation_sweep ~traces:[ 10; 800 ] () in
  match rows with
  | [ sparse; rich ] ->
    Alcotest.(check bool) "held-out ll improves with data" true
      (rich.Estimators.eq1_ll > sparse.Estimators.eq1_ll);
    Alcotest.(check bool) "planted model is the ceiling" true
      (rich.Estimators.eq1_ll <= rich.Estimators.planted_ll +. 1e-9
      && rich.Estimators.em_ll <= rich.Estimators.planted_ll +. 1e-9);
    Alcotest.(check bool) "rich estimators near the ceiling" true
      (rich.Estimators.planted_ll -. rich.Estimators.eq1_ll < 0.2)
  | _ -> Alcotest.fail "unexpected row count"

let test_family_comparison_sane () =
  let rows = Estimators.family_comparison () in
  Alcotest.(check int) "three estimators" 3 (List.length rows);
  List.iter
    (fun (r : Estimators.family_row) ->
      if r.Estimators.spearman < 0.3 || r.Estimators.spearman > 1. then
        Alcotest.failf "%s correlation out of plausible range: %f" r.Estimators.name
          r.Estimators.spearman)
    rows;
  (* Eq. 1 should lead on this workload (documented in EXPERIMENTS.md). *)
  let find name = (List.find (fun r -> r.Estimators.name = name) rows).Estimators.spearman in
  Alcotest.(check bool) "Eq1 >= Jaccard here" true (find "Eq. 1" >= find "Jaccard")

let test_perturbation_error_monotone () =
  let rows = Estimators.perturbation_sweep ~epsilons:[ 0.1; 1.; 20. ] () in
  match rows with
  | [ a; b; c ] ->
    Alcotest.(check bool) "error falls with epsilon" true
      (a.Estimators.mean_abs_error > b.Estimators.mean_abs_error
      && b.Estimators.mean_abs_error > c.Estimators.mean_abs_error)
  | _ -> Alcotest.fail "unexpected row count"

let test_discretization_u_shape () =
  let rows = Estimators.discretization_sweep ~steps:[ 1; 20; 200 ] () in
  match rows with
  | [ fine; mid; coarse ] ->
    Alcotest.(check bool) "mid bin counts most episodes" true
      (mid.Estimators.episodes > fine.Estimators.episodes
      && mid.Estimators.episodes > coarse.Estimators.episodes)
  | _ -> Alcotest.fail "unexpected row count"

(* --- privacy experiments ------------------------------------------------------ *)

module Privacy_expt = Spe_expt.Privacy_expt
module Gain = Spe_privacy.Gain
module Leakage = Spe_privacy.Leakage

let test_figure1_claims () =
  let rows = Privacy_expt.figure1 ~trials_per_x:300 () in
  Alcotest.(check int) "two priors" 2 (List.length rows);
  List.iter
    (fun (row : Privacy_expt.figure1_row) ->
      let r = row.Privacy_expt.result in
      Alcotest.(check bool)
        (Printf.sprintf "%s: gain small positive (%.4f)" row.Privacy_expt.prior_name
           r.Gain.average)
        true
        (r.Gain.average > 0. && r.Gain.average < 1.);
      Alcotest.(check bool) "helps more often than hurts" true (r.Gain.positive_fraction > 0.5))
    rows

let test_theorem41_within_noise () =
  let rows = Privacy_expt.theorem41 ~trials:10_000 () in
  List.iter
    (fun (row : Privacy_expt.leakage_row) ->
      (* 3-sigma bound for binomial rates around ~0.1 at 10k trials. *)
      let dev = Privacy_expt.max_rate_deviation row in
      if dev > 0.012 then Alcotest.failf "x=%d deviates by %.4f" row.Privacy_expt.x dev;
      (* P3 measured rates never exceed the stated bound (plus noise). *)
      let o = row.Privacy_expt.observed in
      let p3 =
        float_of_int (o.Leakage.p3_lower_hits + o.Leakage.p3_upper_hits)
        /. float_of_int o.Leakage.trials
      in
      if p3 > row.Privacy_expt.theory.Leakage.p3_lower +. row.Privacy_expt.theory.Leakage.p3_upper +. 0.01
      then Alcotest.failf "x=%d P3 rate %.4f above bound" row.Privacy_expt.x p3)
    rows

let () =
  Alcotest.run "spe_expt"
    [
      ( "workloads",
        [
          Alcotest.test_case "deterministic" `Quick test_workloads_deterministic;
          Alcotest.test_case "splits cover" `Quick test_workloads_split_covers;
        ] );
      ( "comm-costs",
        [
          Alcotest.test_case "table 1 sweep" `Quick test_table1_sweep_all_match;
          Alcotest.test_case "table 2 sweep" `Slow test_table2_sweep_all_match;
          Alcotest.test_case "MS ~ m^2" `Quick test_table1_ms_scales_with_m_squared;
        ] );
      ( "estimators",
        [
          Alcotest.test_case "EM overfitting claim" `Slow test_em_overfits_sparse_but_wins_rich;
          Alcotest.test_case "generalisation convergence" `Slow test_generalisation_converges;
          Alcotest.test_case "family comparison" `Quick test_family_comparison_sane;
          Alcotest.test_case "perturbation monotone" `Quick test_perturbation_error_monotone;
          Alcotest.test_case "discretization sweet spot" `Quick test_discretization_u_shape;
        ] );
      ( "privacy",
        [
          Alcotest.test_case "figure 1 claims" `Quick test_figure1_claims;
          Alcotest.test_case "theorem 4.1 within noise" `Slow test_theorem41_within_noise;
        ] );
    ]
