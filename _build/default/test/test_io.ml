(* Tests for the file interchange formats used by the CLI. *)

module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Graph_io = Spe_graph.Graph_io
module Log = Spe_actionlog.Log
module Log_io = Spe_actionlog.Log_io
module Cascade = Spe_actionlog.Cascade
module State = Spe_rng.State

let st () = State.create ~seed:131 ()

let graph_equal a b =
  Digraph.n a = Digraph.n b && Digraph.edges a = Digraph.edges b

(* --- graphs ------------------------------------------------------------ *)

let test_graph_roundtrip_string () =
  let s = st () in
  for _ = 1 to 20 do
    let g = Generate.erdos_renyi_gnp s ~n:(5 + State.next_int s 30) ~p:0.2 in
    let g' = Graph_io.of_string (Graph_io.to_string g) in
    Alcotest.(check bool) "round trip" true (graph_equal g g')
  done

let test_graph_roundtrip_file () =
  let s = st () in
  let g = Generate.barabasi_albert s ~n:25 ~m:2 in
  let path = Filename.temp_file "spe_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g path;
      Alcotest.(check bool) "file round trip" true (graph_equal g (Graph_io.load path)))

let test_graph_parses_comments_and_blanks () =
  let g = Graph_io.of_string "# a comment\n\nn 3\n0 1\n\n# another\n1 2\n" in
  Alcotest.(check int) "nodes" 3 (Digraph.n g);
  Alcotest.(check int) "arcs" 2 (Digraph.edge_count g)

let test_graph_rejects_malformed () =
  let fails input =
    match Graph_io.of_string input with
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted malformed input %S" input
  in
  fails "0 1\n";            (* missing header *)
  fails "n 3\nn 4\n0 1\n";  (* duplicate header *)
  fails "n 3\n0\n";         (* incomplete arc *)
  fails "n 3\n0 x\n";       (* non-numeric *)
  fails "n 2\n0 5\n"        (* endpoint out of range *)

let test_graph_empty () =
  let g = Graph_io.of_string "n 0\n" in
  Alcotest.(check int) "empty graph" 0 (Digraph.n g);
  Alcotest.(check string) "renders" "n 0\n" (Graph_io.to_string g)

(* --- logs --------------------------------------------------------------- *)

let sample_log s =
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:60 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  Cascade.generate s planted { Cascade.num_actions = 10; seeds_per_action = 1; max_delay = 3 }

let test_log_roundtrip_string () =
  let s = st () in
  for _ = 1 to 20 do
    let log = sample_log s in
    Alcotest.(check bool) "round trip" true (Log.equal log (Log_io.of_string (Log_io.to_string log)))
  done

let test_log_roundtrip_file () =
  let s = st () in
  let log = sample_log s in
  let path = Filename.temp_file "spe_log" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Log_io.save log path;
      Alcotest.(check bool) "file round trip" true (Log.equal log (Log_io.load path)))

let test_log_rejects_malformed () =
  let fails input =
    match Log_io.of_string input with
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted malformed input %S" input
  in
  fails "0 1 2\n";                       (* missing header *)
  fails "universe 5 5\n0 1\n";           (* incomplete record *)
  fails "universe 5 5\n9 0 0\n";         (* user out of universe *)
  fails "universe 5 5\n0 0 -1\n";        (* negative time *)
  fails "universe x 5\n"                 (* bad header *)

let test_log_preserves_universe () =
  let log = Log_io.of_string "universe 7 4\n0 0 5\n" in
  Alcotest.(check int) "users" 7 (Log.num_users log);
  Alcotest.(check int) "actions" 4 (Log.num_actions log);
  Alcotest.(check int) "records" 1 (Log.size log)

let test_log_empty () =
  let log = Log_io.of_string "universe 3 2\n" in
  Alcotest.(check int) "no records" 0 (Log.size log)

(* --- class specs ----------------------------------------------------------- *)

module Spec_io = Spe_actionlog.Spec_io
module Partition = Spe_actionlog.Partition

let spec_equal (a : Partition.class_spec) (b : Partition.class_spec) =
  a.Partition.m = b.Partition.m
  && a.Partition.action_class = b.Partition.action_class
  && a.Partition.class_providers = b.Partition.class_providers

let test_spec_roundtrip () =
  let s = st () in
  for _ = 1 to 20 do
    let spec = Partition.random_class_spec s ~num_actions:12 ~m:4 ~num_classes:3 in
    Alcotest.(check bool) "round trip" true
      (spec_equal spec (Spec_io.of_string (Spec_io.to_string spec)))
  done

let test_spec_file_roundtrip () =
  let s = st () in
  let spec = Partition.random_class_spec s ~num_actions:8 ~m:3 ~num_classes:2 in
  let path = Filename.temp_file "spe_spec" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Spec_io.save spec path;
      Alcotest.(check bool) "file round trip" true (spec_equal spec (Spec_io.load path)))

let test_spec_rejects_malformed () =
  let fails input =
    match Spec_io.of_string input with
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted malformed spec %S" input
  in
  fails "class 0 0\naction 0 0\n";                 (* missing providers *)
  fails "providers 2\naction 0 0\n";               (* class undeclared *)
  fails "providers 2\nclass 0 0\nclass 0 1\naction 0 0\n"; (* duplicate class *)
  fails "providers 2\nclass 0 5\naction 0 0\n";    (* provider out of range *)
  fails "providers 2\nclass 0 0\naction 0 0\naction 2 0\n" (* sparse action ids *)

let test_spec_comments () =
  let spec = Spec_io.of_string "# header\nproviders 2\n\nclass 0 0 1\naction 0 0\n" in
  Alcotest.(check int) "providers" 2 spec.Partition.m;
  Alcotest.(check int) "one action" 1 (Array.length spec.Partition.action_class)

(* --- results --------------------------------------------------------------- *)

module Result_io = Spe_influence.Result_io

let test_strengths_roundtrip () =
  let strengths = [ ((0, 1), 0.5); ((3, 2), 1. /. 3.); ((1, 0), 0.) ] in
  let back = Result_io.strengths_of_string (Result_io.strengths_to_string strengths) in
  Alcotest.(check int) "count" 3 (List.length back);
  List.iter2
    (fun ((u, v), p) ((u', v'), p') ->
      Alcotest.(check int) "src" u u';
      Alcotest.(check int) "dst" v v';
      Alcotest.(check bool) "value bit-exact" true (p = p'))
    strengths back

let test_scores_roundtrip () =
  let scores = [| 0.; 1.5; 2. /. 7.; 42. |] in
  let back = Result_io.scores_of_string (Result_io.scores_to_string scores) in
  Alcotest.(check bool) "bit-exact array" true (scores = back)

let test_results_malformed () =
  let fails f input =
    match f input with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "accepted malformed input %S" input
  in
  fails Result_io.strengths_of_string "0 1 0.5\n";            (* no header *)
  fails Result_io.strengths_of_string "strengths 2\n0 1 0.5\n"; (* count mismatch *)
  fails Result_io.strengths_of_string "strengths 1\n0 1 x\n";  (* bad value *)
  fails Result_io.scores_of_string "scores 1\n5 1.0\n"         (* id out of range *)

(* --- end-to-end story --------------------------------------------------------- *)

let test_full_pipeline_through_files () =
  (* The CLI workflow as a library round trip: generate, persist
     everything, reload, run the secure pipeline, persist the results,
     reload them, and feed seed selection — asserting consistency at
     every hop. *)
  let dir = Filename.temp_file "spe_story" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let path name = Filename.concat dir name in
      let s = st () in
      let g = Generate.barabasi_albert s ~n:25 ~m:2 in
      let planted = Cascade.uniform_probabilities ~p:0.3 g in
      let log = Cascade.generate s planted { Cascade.num_actions = 20; seeds_per_action = 1; max_delay = 2 } in
      let logs = Spe_actionlog.Partition.exclusive s log ~m:2 in
      (* Persist and reload the inputs. *)
      Graph_io.save g (path "graph.txt");
      Array.iteri (fun k l -> Log_io.save l (path (Printf.sprintf "p%d.log" k))) logs;
      let g' = Graph_io.load (path "graph.txt") in
      let logs' = Array.init 2 (fun k -> Log_io.load (path (Printf.sprintf "p%d.log" k))) in
      (* Secure estimation on the reloaded inputs. *)
      let r =
        Spe_core.Driver.link_strengths_exclusive s ~graph:g' ~logs:logs'
          (Spe_core.Protocol4.default_config ~h:2)
      in
      Result_io.save_strengths r.Spe_core.Driver.strengths (path "strengths.txt");
      let strengths = Result_io.load_strengths (path "strengths.txt") in
      Alcotest.(check int) "all arcs estimated" (Digraph.edge_count g) (List.length strengths);
      (* Downstream consumption of the reloaded results. *)
      let model = Spe_influence.Maximize.of_strengths g' strengths in
      let seeds, spread = Spe_influence.Maximize.celf s model ~k:2 ~samples:100 in
      Alcotest.(check int) "two seeds" 2 (List.length seeds);
      Alcotest.(check bool) "positive spread" true (spread >= 2.))

let () =
  Alcotest.run "spe_io"
    [
      ( "graph",
        [
          Alcotest.test_case "string round trip" `Quick test_graph_roundtrip_string;
          Alcotest.test_case "file round trip" `Quick test_graph_roundtrip_file;
          Alcotest.test_case "comments/blanks" `Quick test_graph_parses_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick test_graph_rejects_malformed;
          Alcotest.test_case "empty" `Quick test_graph_empty;
        ] );
      ( "log",
        [
          Alcotest.test_case "string round trip" `Quick test_log_roundtrip_string;
          Alcotest.test_case "file round trip" `Quick test_log_roundtrip_file;
          Alcotest.test_case "malformed" `Quick test_log_rejects_malformed;
          Alcotest.test_case "universe preserved" `Quick test_log_preserves_universe;
          Alcotest.test_case "empty" `Quick test_log_empty;
        ] );
      ( "spec",
        [
          Alcotest.test_case "string round trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "file round trip" `Quick test_spec_file_roundtrip;
          Alcotest.test_case "malformed" `Quick test_spec_rejects_malformed;
          Alcotest.test_case "comments" `Quick test_spec_comments;
        ] );
      ( "results",
        [
          Alcotest.test_case "strengths round trip" `Quick test_strengths_roundtrip;
          Alcotest.test_case "scores round trip" `Quick test_scores_roundtrip;
          Alcotest.test_case "malformed" `Quick test_results_malformed;
        ] );
      ( "story",
        [ Alcotest.test_case "full pipeline through files" `Quick test_full_pipeline_through_files ] );
    ]
