(* Tests for the graph substrate: digraph invariants, generator shape
   properties, traversal correctness against brute force, and the
   obfuscated edge-set used by Protocols 4 and 6. *)

module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Traverse = Spe_graph.Traverse
module Obfuscate = Spe_graph.Obfuscate
module State = Spe_rng.State

let st () = State.create ~seed:23 ()

(* --- digraph ----------------------------------------------------------- *)

let test_create_basic () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check int) "n" 4 (Digraph.n g);
  Alcotest.(check int) "edges" 4 (Digraph.edge_count g);
  Alcotest.(check bool) "mem (0,1)" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "not mem (1,0)" false (Digraph.mem_edge g 1 0);
  Alcotest.(check bool) "out of range is false" false (Digraph.mem_edge g 0 9)

let test_create_dedup () =
  let g = Digraph.create ~n:3 [ (0, 1); (0, 1); (1, 2) ] in
  Alcotest.(check int) "duplicates collapsed" 2 (Digraph.edge_count g)

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.create: self-loop")
    (fun () -> ignore (Digraph.create ~n:2 [ (1, 1) ]))

let test_create_rejects_out_of_range () =
  Alcotest.check_raises "endpoint range" (Invalid_argument "Digraph.create: endpoint out of range")
    (fun () -> ignore (Digraph.create ~n:2 [ (0, 5) ]))

let test_neighbors_and_degrees () =
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (3, 0) ] in
  Alcotest.(check (array int)) "out of 0" [| 1; 2 |] (Digraph.out_neighbors g 0);
  Alcotest.(check (array int)) "in of 0" [| 3 |] (Digraph.in_neighbors g 0);
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree" 1 (Digraph.in_degree g 0);
  Alcotest.(check int) "sink degrees" 0 (Digraph.out_degree g 1)

let test_of_undirected () =
  let g = Digraph.of_undirected ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "both arcs per edge" 4 (Digraph.edge_count g);
  Alcotest.(check bool) "forward" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "backward" true (Digraph.mem_edge g 1 0)

let test_edges_sorted () =
  let g = Digraph.create ~n:3 [ (2, 0); (0, 1); (1, 2) ] in
  Alcotest.(check (list (pair int int))) "lexicographic"
    [ (0, 1); (1, 2); (2, 0) ]
    (Digraph.edges g)

let test_fold_edges () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let total = Digraph.fold_edges g ~init:0 ~f:(fun acc u v -> acc + u + v) in
  Alcotest.(check int) "fold sums endpoints" 4 total

(* --- generators -------------------------------------------------------- *)

let test_gnp_degenerate () =
  let s = st () in
  Alcotest.(check int) "p=0 empty" 0 (Digraph.edge_count (Generate.erdos_renyi_gnp s ~n:10 ~p:0.));
  Alcotest.(check int) "p=1 complete" 90
    (Digraph.edge_count (Generate.erdos_renyi_gnp s ~n:10 ~p:1.))

let test_gnp_density () =
  let s = st () in
  let n = 100 and p = 0.05 in
  let total = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    total := !total + Digraph.edge_count (Generate.erdos_renyi_gnp s ~n ~p)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = p *. float_of_int (n * (n - 1)) in
  Alcotest.(check bool) "mean edge count near expectation" true
    (abs_float (mean -. expected) /. expected < 0.1)

let test_gnm_exact () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:50 ~m:200 in
  Alcotest.(check int) "exact edge count" 200 (Digraph.edge_count g);
  Alcotest.check_raises "m too large"
    (Invalid_argument "Generate.erdos_renyi_gnm: m out of range")
    (fun () -> ignore (Generate.erdos_renyi_gnm s ~n:3 ~m:7))

let test_barabasi_albert () =
  let s = st () in
  let n = 200 and m = 3 in
  let g = Generate.barabasi_albert s ~n ~m in
  Alcotest.(check int) "node count" n (Digraph.n g);
  (* Undirected edge count: clique (m+1 choose 2) + m per later node. *)
  let expected_undirected = (m * (m + 1) / 2) + (m * (n - m - 1)) in
  Alcotest.(check int) "edge count" (2 * expected_undirected) (Digraph.edge_count g);
  Alcotest.(check bool) "connected" true (Traverse.is_connected_undirected g);
  (* Preferential attachment must produce a hub: some node with degree
     far above m. *)
  let max_deg = ref 0 in
  for v = 0 to n - 1 do
    max_deg := max !max_deg (Digraph.out_degree g v)
  done;
  Alcotest.(check bool) "hub exists" true (!max_deg > 4 * m)

let test_watts_strogatz () =
  let s = st () in
  let n = 100 and k = 4 in
  let g = Generate.watts_strogatz s ~n ~k ~beta:0.1 in
  Alcotest.(check int) "node count" n (Digraph.n g);
  Alcotest.(check int) "edge count preserved by rewiring" (n * k) (Digraph.edge_count g);
  let g0 = Generate.watts_strogatz s ~n ~k ~beta:0. in
  (* beta = 0: the pristine ring lattice. *)
  Alcotest.(check bool) "ring arc" true (Digraph.mem_edge g0 0 1);
  Alcotest.(check bool) "ring arc 2" true (Digraph.mem_edge g0 0 2);
  Alcotest.(check bool) "no long chord" false (Digraph.mem_edge g0 0 50)

let test_ws_invalid () =
  let s = st () in
  Alcotest.check_raises "odd k"
    (Invalid_argument "Generate.watts_strogatz: k must be even and >= 2")
    (fun () -> ignore (Generate.watts_strogatz s ~n:10 ~k:3 ~beta:0.1))

let test_configuration_model () =
  let s = st () in
  (* Regular degree sequence: realised degrees can only fall short
     through erased self-loops/duplicates. *)
  let degrees = Array.make 50 6 in
  let g = Generate.configuration_model s ~degrees in
  Alcotest.(check int) "node count" 50 (Digraph.n g);
  for v = 0 to 49 do
    let d = Digraph.out_degree g v in
    if d > 6 then Alcotest.failf "degree exceeded at %d" v
  done;
  (* Most stubs survive erasure on a sparse sequence. *)
  Alcotest.(check bool) "few erased" true (Digraph.edge_count g > 50 * 5);
  (* Heterogeneous sequence: the hub really is a hub. *)
  let degrees = Array.append [| 20 |] (Array.make 40 1) in
  let degrees = if Array.fold_left ( + ) 0 degrees mod 2 = 1 then (degrees.(1) <- 2; degrees) else degrees in
  let g = Generate.configuration_model s ~degrees in
  Alcotest.(check bool) "hub degree dominates" true (Digraph.out_degree g 0 > 10)

let test_configuration_model_invalid () =
  let s = st () in
  Alcotest.check_raises "odd stubs"
    (Invalid_argument "Generate.configuration_model: odd stub count")
    (fun () -> ignore (Generate.configuration_model s ~degrees:[| 1; 1; 1 |]));
  Alcotest.check_raises "negative degree"
    (Invalid_argument "Generate.configuration_model: negative degree")
    (fun () -> ignore (Generate.configuration_model s ~degrees:[| -1; 1 |]))

let test_forest_fire () =
  let s = st () in
  let g = Generate.forest_fire s ~n:100 ~forward:0.35 ~backward:0.2 in
  Alcotest.(check int) "node count" 100 (Digraph.n g);
  (* Every node after the first links to at least its ambassador. *)
  for v = 1 to 99 do
    if Digraph.out_degree g v < 1 then Alcotest.failf "node %d has no links" v
  done;
  Alcotest.(check bool) "weakly connected" true (Traverse.is_connected_undirected g);
  (* Heavy in-degree tail: some node far above the average. *)
  let max_in = ref 0 in
  for v = 0 to 99 do
    max_in := max !max_in (Digraph.in_degree g v)
  done;
  let avg = float_of_int (Digraph.edge_count g) /. 100. in
  Alcotest.(check bool) "in-degree hub" true (float_of_int !max_in > 3. *. avg)

let test_forest_fire_zero_burn () =
  (* No burning: each node links only to its ambassador — a tree. *)
  let s = st () in
  let g = Generate.forest_fire s ~n:40 ~forward:0. ~backward:0. in
  Alcotest.(check int) "tree arc count" 39 (Digraph.edge_count g)

(* --- traversal --------------------------------------------------------- *)

let test_bfs () =
  (* 0 -> 1 -> 2, 0 -> 3; 4 isolated *)
  let g = Digraph.create ~n:5 [ (0, 1); (1, 2); (0, 3) ] in
  let d = Traverse.bfs_distances g ~src:0 in
  Alcotest.(check int) "d(0)" 0 d.(0);
  Alcotest.(check int) "d(1)" 1 d.(1);
  Alcotest.(check int) "d(2)" 2 d.(2);
  Alcotest.(check int) "d(3)" 1 d.(3);
  Alcotest.(check int) "unreachable" max_int d.(4)

let test_bfs_respects_direction () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let d = Traverse.bfs_distances g ~src:2 in
  Alcotest.(check int) "cannot go backwards" max_int d.(0)

let test_weighted_distances () =
  (* 0 -(5)-> 1, 0 -(2)-> 2, 2 -(2)-> 1: shortest 0->1 is 4. *)
  let adj = function
    | 0 -> [ (1, 5); (2, 2) ]
    | 2 -> [ (1, 2) ]
    | _ -> []
  in
  let d = Traverse.weighted_distances ~n:3 ~adj ~src:0 in
  Alcotest.(check int) "via cheaper path" 4 d.(1);
  Alcotest.(check int) "direct" 2 d.(2)

let test_bounded_reachable () =
  let adj = function
    | 0 -> [ (1, 3); (2, 1) ]
    | 2 -> [ (3, 1) ]
    | 3 -> [ (4, 10) ]
    | _ -> []
  in
  Alcotest.(check (list int)) "tau=2 sphere" [ 2; 3 ]
    (Traverse.bounded_reachable ~n:5 ~adj ~src:0 ~tau:2);
  Alcotest.(check (list int)) "tau=3 sphere" [ 1; 2; 3 ]
    (Traverse.bounded_reachable ~n:5 ~adj ~src:0 ~tau:3);
  Alcotest.(check (list int)) "tau=0 empty" []
    (Traverse.bounded_reachable ~n:5 ~adj ~src:0 ~tau:0)

let test_weighted_rejects_bad_weight () =
  let adj = function 0 -> [ (1, 0) ] | _ -> [] in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Traverse.weighted_distances: non-positive weight")
    (fun () -> ignore (Traverse.weighted_distances ~n:2 ~adj ~src:0))

let test_dijkstra_vs_bruteforce () =
  (* Random small weighted graphs vs exhaustive Bellman-Ford. *)
  let s = st () in
  for _ = 1 to 30 do
    let n = 2 + State.next_int s 8 in
    let arcs = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && State.next_float s < 0.4 then
          arcs := (u, v, 1 + State.next_int s 9) :: !arcs
      done
    done;
    let adj u = List.filter_map (fun (a, b, w) -> if a = u then Some (b, w) else None) !arcs in
    let src = State.next_int s n in
    let dij = Traverse.weighted_distances ~n ~adj ~src in
    (* Bellman-Ford *)
    let bf = Array.make n max_int in
    bf.(src) <- 0;
    for _ = 1 to n do
      List.iter
        (fun (u, v, w) -> if bf.(u) < max_int && bf.(u) + w < bf.(v) then bf.(v) <- bf.(u) + w)
        !arcs
    done;
    for v = 0 to n - 1 do
      if dij.(v) <> bf.(v) then Alcotest.failf "distance mismatch at node %d" v
    done
  done

(* --- obfuscation ------------------------------------------------------- *)

let test_obfuscate_covers () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:30 ~m:60 in
  let ob = Obfuscate.make s g ~c:2. in
  Alcotest.(check bool) "E subset of E'" true (Obfuscate.covers ob g);
  Alcotest.(check bool) "size at least c|E|" true (Obfuscate.size ob >= 120)

let test_obfuscate_c1_is_exact () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:40 in
  let ob = Obfuscate.make s g ~c:1. in
  Alcotest.(check int) "c=1 publishes exactly E" 40 (Obfuscate.size ob)

let test_obfuscate_caps_at_all_pairs () =
  let s = st () in
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2) ] in
  let ob = Obfuscate.make s g ~c:100. in
  Alcotest.(check int) "capped at n(n-1)" 12 (Obfuscate.size ob)

let test_obfuscate_no_self_pairs () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:10 ~m:20 in
  let ob = Obfuscate.make s g ~c:3. in
  Obfuscate.iteri ob (fun _ u v -> if u = v then Alcotest.fail "self pair published")

let test_obfuscate_index_of () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:15 ~m:30 in
  let ob = Obfuscate.make s g ~c:2. in
  Obfuscate.iteri ob (fun idx u v ->
      match Obfuscate.index_of ob u v with
      | Some i when i = idx -> ()
      | _ -> Alcotest.fail "index_of inconsistent with iteri");
  Alcotest.(check bool) "c must be >= 1" true
    (try
       ignore (Obfuscate.make s g ~c:0.5);
       false
     with Invalid_argument _ -> true)

(* --- QCheck properties -------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"gnm always produces requested count" ~count:100
      (pair small_nat small_nat)
      (fun (seed, raw) ->
        let s = State.create ~seed () in
        let n = 5 + (raw mod 20) in
        let m = (raw * 7) mod (n * (n - 1) / 2) in
        Digraph.edge_count (Generate.erdos_renyi_gnm s ~n ~m) = m);
    Test.make ~name:"degree sums equal edge count" ~count:50 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnp s ~n:40 ~p:0.1 in
        let out_sum = ref 0 and in_sum = ref 0 in
        for v = 0 to 39 do
          out_sum := !out_sum + Digraph.out_degree g v;
          in_sum := !in_sum + Digraph.in_degree g v
        done;
        !out_sum = Digraph.edge_count g && !in_sum = Digraph.edge_count g);
    Test.make ~name:"bfs distance is monotone along arcs" ~count:50 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnp s ~n:30 ~p:0.1 in
        let d = Traverse.bfs_distances g ~src:0 in
        Digraph.fold_edges g ~init:true ~f:(fun acc u v ->
            acc && (d.(u) = max_int || d.(v) <= d.(u) + 1)));
    Test.make ~name:"obfuscation covers and respects floor" ~count:50
      (pair small_nat (int_range 10 30))
      (fun (seed, n) ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnp s ~n ~p:0.1 in
        if Digraph.edge_count g = 0 then true
        else begin
          let ob = Obfuscate.make s g ~c:1.5 in
          Obfuscate.covers ob g
          && Obfuscate.size ob
             >= min (n * (n - 1))
                  (int_of_float (ceil (1.5 *. float_of_int (Digraph.edge_count g))))
        end);
  ]

let () =
  Alcotest.run "spe_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "create basics" `Quick test_create_basic;
          Alcotest.test_case "dedup" `Quick test_create_dedup;
          Alcotest.test_case "reject self-loop" `Quick test_create_rejects_self_loop;
          Alcotest.test_case "reject out of range" `Quick test_create_rejects_out_of_range;
          Alcotest.test_case "neighbors/degrees" `Quick test_neighbors_and_degrees;
          Alcotest.test_case "of_undirected" `Quick test_of_undirected;
          Alcotest.test_case "edges sorted" `Quick test_edges_sorted;
          Alcotest.test_case "fold_edges" `Quick test_fold_edges;
        ] );
      ( "generators",
        [
          Alcotest.test_case "gnp degenerate" `Quick test_gnp_degenerate;
          Alcotest.test_case "gnp density" `Quick test_gnp_density;
          Alcotest.test_case "gnm exact" `Quick test_gnm_exact;
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
          Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz;
          Alcotest.test_case "ws invalid k" `Quick test_ws_invalid;
          Alcotest.test_case "configuration model" `Quick test_configuration_model;
          Alcotest.test_case "configuration invalid" `Quick test_configuration_model_invalid;
          Alcotest.test_case "forest fire" `Quick test_forest_fire;
          Alcotest.test_case "forest fire zero burn" `Quick test_forest_fire_zero_burn;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "bfs directionality" `Quick test_bfs_respects_direction;
          Alcotest.test_case "dijkstra" `Quick test_weighted_distances;
          Alcotest.test_case "bounded reachable" `Quick test_bounded_reachable;
          Alcotest.test_case "bad weight" `Quick test_weighted_rejects_bad_weight;
          Alcotest.test_case "dijkstra vs bellman-ford" `Quick test_dijkstra_vs_bruteforce;
        ] );
      ( "obfuscation",
        [
          Alcotest.test_case "covers E" `Quick test_obfuscate_covers;
          Alcotest.test_case "c=1 exact" `Quick test_obfuscate_c1_is_exact;
          Alcotest.test_case "cap at all pairs" `Quick test_obfuscate_caps_at_all_pairs;
          Alcotest.test_case "no self pairs" `Quick test_obfuscate_no_self_pairs;
          Alcotest.test_case "index_of" `Quick test_obfuscate_index_of;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
