(* Tests for the stats helpers and graph metrics. *)

module Descriptive = Spe_stats.Descriptive
module Correlation = Spe_stats.Correlation
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Metrics = Spe_graph.Metrics
module State = Spe_rng.State

let st () = State.create ~seed:151 ()

let feq = Alcotest.(check (float 1e-9))

(* --- descriptive -------------------------------------------------------- *)

let test_mean_variance () =
  feq "mean" 2.5 (Descriptive.mean [| 1.; 2.; 3.; 4. |]);
  feq "variance" 1.25 (Descriptive.variance [| 1.; 2.; 3.; 4. |]);
  feq "stddev" (sqrt 1.25) (Descriptive.stddev [| 1.; 2.; 3.; 4. |]);
  feq "constant variance" 0. (Descriptive.variance [| 7.; 7.; 7. |])

let test_median_quantile () =
  feq "odd median" 3. (Descriptive.median [| 5.; 3.; 1. |]);
  feq "even median" 2.5 (Descriptive.median [| 1.; 2.; 3.; 4. |]);
  feq "q0" 1. (Descriptive.quantile [| 1.; 2.; 3. |] ~q:0.);
  feq "q1" 3. (Descriptive.quantile [| 1.; 2.; 3. |] ~q:1.);
  feq "interpolated" 1.5 (Descriptive.quantile [| 1.; 2.; 3. |] ~q:0.25)

let test_summary () =
  let s = Descriptive.summarize [| 4.; 1.; 3.; 2. |] in
  Alcotest.(check int) "count" 4 s.Descriptive.count;
  feq "min" 1. s.Descriptive.min;
  feq "max" 4. s.Descriptive.max;
  feq "median" 2.5 s.Descriptive.median

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Spe_stats.mean: empty sample") (fun () ->
      ignore (Descriptive.mean [||]))

(* --- correlation ---------------------------------------------------------- *)

let test_pearson_known () =
  feq "perfect" 1. (Correlation.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  feq "anti" (-1.) (Correlation.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  let r = Correlation.pearson [| 1.; 2.; 3.; 4. |] [| 1.; 3.; 2.; 4. |] in
  Alcotest.(check bool) "partial" true (r > 0.7 && r < 1.)

let test_spearman_monotone_invariance () =
  (* Spearman is invariant under monotone transforms. *)
  let a = [| 0.3; 1.2; 0.7; 2.5; 0.1 |] in
  let b = Array.map (fun x -> exp x) a in
  feq "monotone transform" 1. (Correlation.spearman a b)

let test_ranks_ties () =
  Alcotest.(check (array (float 1e-9))) "mid ranks"
    [| 1.; 2.5; 2.5; 4. |]
    (Correlation.ranks [| 0.; 1.; 1.; 2. |])

let test_kendall_known () =
  feq "perfect" 1. (Correlation.kendall [| 1.; 2.; 3. |] [| 5.; 6.; 7. |]);
  feq "anti" (-1.) (Correlation.kendall [| 1.; 2.; 3. |] [| 7.; 6.; 5. |]);
  (* one discordant pair among three: tau = (2 - 1) / 3 *)
  feq "mixed" (1. /. 3.) (Correlation.kendall [| 1.; 2.; 3. |] [| 1.; 3.; 2. |])

let test_correlation_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Spe_stats.pearson: length mismatch") (fun () ->
      ignore (Correlation.pearson [| 1.; 2. |] [| 1. |]))

(* --- graph metrics ----------------------------------------------------------- *)

let test_degree_histogram () =
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  Alcotest.(check (array int)) "out histogram" [| 2; 1; 0; 1 |] (Metrics.degree_histogram g `Out);
  Alcotest.(check int) "max out degree" 3 (Metrics.max_degree g `Out);
  Alcotest.(check (array int)) "in histogram" [| 1; 2; 1 |] (Metrics.degree_histogram g `In)

let test_reciprocity () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  feq "one of three arcs unreciprocated" (2. /. 3.) (Metrics.reciprocity g);
  let s = st () in
  let und = Generate.watts_strogatz s ~n:20 ~k:4 ~beta:0.1 in
  feq "undirected build fully reciprocal" 1. (Metrics.reciprocity und)

let test_clustering () =
  (* Triangle: fully clustered. *)
  let tri = Digraph.of_undirected ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  feq "triangle" 1. (Metrics.global_clustering tri);
  (* Star: no triangles. *)
  let star = Digraph.of_undirected ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  feq "star" 0. (Metrics.global_clustering star);
  (* Watts-Strogatz at low beta is strongly clustered; ER at same
     density is not. *)
  let s = st () in
  let ws = Generate.watts_strogatz s ~n:100 ~k:6 ~beta:0.05 in
  let er = Generate.erdos_renyi_gnm s ~n:100 ~m:600 in
  Alcotest.(check bool) "ws more clustered than er" true
    (Metrics.global_clustering ws > 2. *. Metrics.global_clustering er)

let test_pagerank_sums_to_one () =
  let s = st () in
  let g = Generate.barabasi_albert s ~n:50 ~m:3 in
  let pr = Metrics.pagerank g in
  feq "sums to 1" 1. (Array.fold_left ( +. ) 0. pr)

let test_pagerank_chain () =
  (* In a chain with damping, rank accumulates downstream. *)
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let pr = Metrics.pagerank g in
  Alcotest.(check bool) "monotone along chain" true (pr.(0) < pr.(1) && pr.(1) < pr.(2))

let test_pagerank_dangling () =
  (* All-dangling graph degenerates to uniform. *)
  let g = Digraph.create ~n:4 [] in
  let pr = Metrics.pagerank g in
  Array.iter (fun p -> feq "uniform" 0.25 p) pr

let test_pagerank_hub () =
  let s = st () in
  let g = Generate.barabasi_albert s ~n:80 ~m:2 in
  let pr = Metrics.pagerank g in
  (* The seed-clique nodes are the oldest and attract the most rank:
     the top PageRank node must be among the high-degree nodes. *)
  let top_pr = List.hd (Metrics.top_k 1 pr) in
  let deg = Array.init 80 (fun v -> float_of_int (Digraph.in_degree g v)) in
  let top_deg = Metrics.top_k 5 deg in
  Alcotest.(check bool) "top pagerank is a hub" true (List.mem top_pr top_deg)

let test_top_k () =
  Alcotest.(check (list int)) "descending" [ 2; 0; 1 ] (Metrics.top_k 3 [| 5.; 1.; 9. |]);
  Alcotest.(check (list int)) "k > n truncates" [ 1; 0 ] (Metrics.top_k 5 [| 1.; 2. |]);
  Alcotest.(check (list int)) "ties by index" [ 0; 1 ] (Metrics.top_k 2 [| 3.; 3.; 1. |])

(* --- QCheck -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let nonempty_floats = list_of_size Gen.(int_range 2 30) (float_range (-100.) 100.) in
  [
    Test.make ~name:"quantiles are monotone" ~count:200 nonempty_floats
      (fun xs ->
        let a = Array.of_list xs in
        Descriptive.quantile a ~q:0.25 <= Descriptive.quantile a ~q:0.75);
    Test.make ~name:"pearson is symmetric" ~count:200 (pair nonempty_floats nonempty_floats)
      (fun (xs, ys) ->
        let n = min (List.length xs) (List.length ys) in
        n >= 2
        ==>
        let a = Array.of_list (List.filteri (fun i _ -> i < n) xs) in
        let b = Array.of_list (List.filteri (fun i _ -> i < n) ys) in
        let r1 = Correlation.pearson a b and r2 = Correlation.pearson b a in
        (Float.is_nan r1 && Float.is_nan r2) || abs_float (r1 -. r2) < 1e-9);
    Test.make ~name:"spearman bounded" ~count:200 (pair nonempty_floats nonempty_floats)
      (fun (xs, ys) ->
        let n = min (List.length xs) (List.length ys) in
        n >= 2
        ==>
        let a = Array.of_list (List.filteri (fun i _ -> i < n) xs) in
        let b = Array.of_list (List.filteri (fun i _ -> i < n) ys) in
        let r = Correlation.spearman a b in
        Float.is_nan r || (r >= -1.0000001 && r <= 1.0000001));
  ]

let () =
  Alcotest.run "spe_stats_metrics"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "median/quantile" `Quick test_median_quantile;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "pearson" `Quick test_pearson_known;
          Alcotest.test_case "spearman invariance" `Quick test_spearman_monotone_invariance;
          Alcotest.test_case "ranks with ties" `Quick test_ranks_ties;
          Alcotest.test_case "kendall" `Quick test_kendall_known;
          Alcotest.test_case "validation" `Quick test_correlation_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "reciprocity" `Quick test_reciprocity;
          Alcotest.test_case "clustering" `Quick test_clustering;
          Alcotest.test_case "pagerank sums" `Quick test_pagerank_sums_to_one;
          Alcotest.test_case "pagerank chain" `Quick test_pagerank_chain;
          Alcotest.test_case "pagerank dangling" `Quick test_pagerank_dangling;
          Alcotest.test_case "pagerank hub" `Quick test_pagerank_hub;
          Alcotest.test_case "top_k" `Quick test_top_k;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
