(* Tests for the Sec. 8 future-work implementations: the multi-host
   Protocol 4 and attribute-informed shrinkage estimation. *)

module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Attributes = Spe_influence.Attributes
module Protocol4 = Spe_core.Protocol4
module Protocol4_multi_host = Spe_core.Protocol4_multi_host

let st () = State.create ~seed:157 ()

(* --- multi-host --------------------------------------------------------- *)

(* Split one generated graph's arcs across t hosts. *)
let split_graph s g ~t =
  let buckets = Array.make t [] in
  Digraph.iter_edges g (fun u v ->
      let j = State.next_int s t in
      buckets.(j) <- (u, v) :: buckets.(j));
  Array.map (fun arcs -> Digraph.create ~n:(Digraph.n g) arcs) buckets

let multi_host_workload s ~t =
  let g = Generate.barabasi_albert s ~n:30 ~m:2 in
  let planted = Cascade.uniform_probabilities ~p:0.35 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 20; seeds_per_action = 1; max_delay = 2 } in
  let graphs = split_graph s g ~t in
  let logs = Partition.exclusive s log ~m:3 in
  (g, graphs, log, logs)

let test_multi_host_matches_plaintext () =
  let s = st () in
  let _, graphs, log, logs = multi_host_workload s ~t:3 in
  let wire = Wire.create () in
  let config = Protocol4.default_config ~h:2 in
  let results = Protocol4_multi_host.run s ~wire ~graphs ~logs config in
  Alcotest.(check int) "one result per host" 3 (Array.length results);
  Array.iteri
    (fun j r ->
      Alcotest.(check int) "host id" j r.Protocol4_multi_host.host;
      (* Each host's strengths equal the plaintext on its own arcs. *)
      List.iter
        (fun ((u, v), p) ->
          if not (Digraph.mem_edge graphs.(j) u v) then
            Alcotest.fail "strength for a foreign arc";
          let expected = Counters.b_single log ~h:2 ~i:u ~j:v in
          let a = (Log.user_activity log).(u) in
          let expected = if a = 0 then 0. else float_of_int expected /. float_of_int a in
          if abs_float (p -. expected) > 1e-3 *. (expected +. 1.) then
            Alcotest.failf "host %d p(%d,%d) = %f vs %f" j u v p expected)
        r.Protocol4_multi_host.strengths)
    results

let test_multi_host_covers_all_arcs () =
  let s = st () in
  let g, graphs, _, logs = multi_host_workload s ~t:2 in
  let wire = Wire.create () in
  let results =
    Protocol4_multi_host.run s ~wire ~graphs ~logs (Protocol4.default_config ~h:2)
  in
  let total =
    Array.fold_left (fun acc r -> acc + List.length r.Protocol4_multi_host.strengths) 0 results
  in
  Alcotest.(check int) "every arc served exactly once" (Digraph.edge_count g) total

let test_multi_host_single_host_equals_protocol4 () =
  (* With one host the protocol must agree with standard Protocol 4 up
     to randomness in E'. *)
  let s = st () in
  let g, _, log, logs = multi_host_workload s ~t:1 in
  let wire = Wire.create () in
  let results =
    Protocol4_multi_host.run s ~wire ~graphs:[| g |] ~logs (Protocol4.default_config ~h:2)
  in
  let r = results.(0) in
  let ct =
    Counters.compute log ~h:2
      ~pairs:(Array.of_list (List.map fst r.Protocol4_multi_host.strengths))
  in
  let expected = Link_strength.all_eq1 ct in
  List.iteri
    (fun k (_, p) ->
      if abs_float (p -. expected.(k)) > 1e-3 *. (expected.(k) +. 1.) then
        Alcotest.fail "single-host mismatch")
    r.Protocol4_multi_host.strengths

let test_multi_host_shared_batch_cheaper () =
  (* The design rationale: one shared sharing batch beats running the
     whole protocol once per host. *)
  let s = st () in
  let _, graphs, _, logs = multi_host_workload s ~t:3 in
  let config = Protocol4.default_config ~h:2 in
  let wire_multi = Wire.create () in
  let _ = Protocol4_multi_host.run s ~wire:wire_multi ~graphs ~logs config in
  let per_host_total = ref 0 in
  Array.iter
    (fun g ->
      if Digraph.edge_count g > 0 then begin
        let wire = Wire.create () in
        let pairs = Protocol4.publish_pairs s ~wire ~graph:g ~m:3 ~c_factor:config.Protocol4.c_factor in
        let inputs =
          Array.map (fun l -> Protocol4.provider_input_of_log l ~h:2 ~pairs) logs
        in
        let _ = Protocol4.run s ~wire ~graph:g ~num_actions:20 ~pairs ~inputs config in
        per_host_total := !per_host_total + (Wire.stats wire).Wire.bits
      end)
    graphs;
  let multi = (Wire.stats wire_multi).Wire.bits in
  Alcotest.(check bool)
    (Printf.sprintf "shared batch %d bits < separate runs %d bits" multi !per_host_total)
    true (multi < !per_host_total)

let test_multi_host_validation () =
  let s = st () in
  let wire = Wire.create () in
  let g5 = Digraph.create ~n:5 [ (0, 1) ] and g6 = Digraph.create ~n:6 [ (0, 1) ] in
  let log = Log.empty ~num_users:5 ~num_actions:2 in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Protocol4_multi_host.run: hosts must share the user universe")
    (fun () ->
      ignore
        (Protocol4_multi_host.run s ~wire ~graphs:[| g5; g6 |] ~logs:[| log; log |]
           (Protocol4.default_config ~h:2)))

(* --- attributes --------------------------------------------------------- *)

(* A two-group planted model: strong within-group influence, weak
   across. *)
let attribute_workload s =
  let n = 40 in
  let g = Generate.erdos_renyi_gnm s ~n ~m:300 in
  let grouping = Attributes.random_grouping s ~n ~num_groups:2 in
  let truth u v =
    if grouping.Attributes.group_of.(u) = grouping.Attributes.group_of.(v) then 0.5 else 0.05
  in
  let planted = { Cascade.graph = g; probability = truth } in
  (g, grouping, truth, planted)

let test_grouping_validation () =
  Alcotest.check_raises "negative id"
    (Invalid_argument "Attributes.grouping_of_array: negative group id") (fun () ->
      ignore (Attributes.grouping_of_array [| 0; -1 |]));
  let gr = Attributes.grouping_of_array [| 0; 2; 1 |] in
  Alcotest.(check int) "group count inferred" 3 gr.Attributes.num_groups

let test_pooled_strengths_separate_groups () =
  let s = st () in
  let g, grouping, _, planted = attribute_workload s in
  let log = Cascade.generate s planted { Cascade.num_actions = 300; seeds_per_action = 2; max_delay = 2 } in
  let ct = Counters.compute_graph log ~h:2 g in
  let pooled = Attributes.pooled_strengths ct grouping in
  (* Within-group pooled strength must clearly exceed cross-group. *)
  let within = (pooled.(0).(0) +. pooled.(1).(1)) /. 2. in
  let across = (pooled.(0).(1) +. pooled.(1).(0)) /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "within %.3f > across %.3f" within across)
    true
    (within > 2. *. across)

let test_shrinkage_zero_lambda_is_eq1 () =
  let s = st () in
  let g, grouping, _, planted = attribute_workload s in
  let log = Cascade.generate s planted Cascade.default_params in
  let ct = Counters.compute_graph log ~h:2 g in
  let shrunk = Attributes.shrunk_strengths ct grouping ~lambda:0. in
  let eq1 = Link_strength.all_eq1 ct in
  Array.iteri
    (fun k v -> if abs_float (v -. eq1.(k)) > 1e-12 then Alcotest.fail "lambda=0 <> Eq1")
    shrunk

let test_shrinkage_improves_sparse_estimates () =
  (* With few traces, shrinking toward the group prior reduces MSE
     against the planted truth — the Sec. 8 motivation. *)
  let s = st () in
  let g, grouping, truth, planted = attribute_workload s in
  let log = Cascade.generate s planted { Cascade.num_actions = 15; seeds_per_action = 2; max_delay = 2 } in
  let ct = Counters.compute_graph log ~h:2 g in
  let raw = Attributes.shrunk_strengths ct grouping ~lambda:0. in
  let shrunk = Attributes.shrunk_strengths ct grouping ~lambda:5. in
  let mse e = Attributes.mse_vs_truth ~estimates:e ~pairs:ct.Counters.pairs ~truth in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk mse %.4f < raw mse %.4f" (mse shrunk) (mse raw))
    true
    (mse shrunk < mse raw)

let test_shrinkage_infinite_lambda_is_pooled () =
  let s = st () in
  let g, grouping, _, planted = attribute_workload s in
  let log = Cascade.generate s planted Cascade.default_params in
  let ct = Counters.compute_graph log ~h:2 g in
  let pooled = Attributes.pooled_strengths ct grouping in
  let shrunk = Attributes.shrunk_strengths ct grouping ~lambda:1e12 in
  Array.iteri
    (fun k (i, j) ->
      let prior = pooled.(grouping.Attributes.group_of.(i)).(grouping.Attributes.group_of.(j)) in
      if abs_float (shrunk.(k) -. prior) > 1e-6 then
        Alcotest.fail "large lambda must converge to the pooled prior")
    ct.Counters.pairs

let () =
  Alcotest.run "spe_extensions"
    [
      ( "multi-host",
        [
          Alcotest.test_case "matches plaintext" `Quick test_multi_host_matches_plaintext;
          Alcotest.test_case "covers all arcs" `Quick test_multi_host_covers_all_arcs;
          Alcotest.test_case "single host" `Quick test_multi_host_single_host_equals_protocol4;
          Alcotest.test_case "shared batch cheaper" `Quick test_multi_host_shared_batch_cheaper;
          Alcotest.test_case "validation" `Quick test_multi_host_validation;
        ] );
      ( "attributes",
        [
          Alcotest.test_case "grouping validation" `Quick test_grouping_validation;
          Alcotest.test_case "pooled separates groups" `Quick test_pooled_strengths_separate_groups;
          Alcotest.test_case "lambda=0 is Eq1" `Quick test_shrinkage_zero_lambda_is_eq1;
          Alcotest.test_case "shrinkage helps sparse data" `Quick test_shrinkage_improves_sparse_estimates;
          Alcotest.test_case "lambda=inf is pooled" `Quick test_shrinkage_infinite_lambda_is_pooled;
        ] );
    ]
