(* Tests for the cryptographic alternatives the paper discusses and
   rejects on cost grounds: oblivious transfer, the millionaires'
   comparison, the third-party-free Protocol 2 and the perfectly hiding
   Protocol 4. *)

module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Ot = Spe_mpc.Ot
module Compare = Spe_mpc.Compare
module Protocol2 = Spe_mpc.Protocol2
module Protocol2_crypto = Spe_mpc.Protocol2_crypto
module Protocol4 = Spe_core.Protocol4
module Protocol4_oblivious = Spe_core.Protocol4_oblivious
module Driver = Spe_core.Driver
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength

let st () = State.create ~seed:149 ()

(* --- oblivious transfer ----------------------------------------------------- *)

let test_ot_correctness () =
  let s = st () in
  for _ = 1 to 20 do
    let n = 1 + State.next_int s 12 in
    let messages = Array.init n (fun _ -> State.next_int s 1_000_000) in
    let choice = State.next_int s n in
    let wire = Wire.create () in
    let got =
      Ot.transfer s ~wire ~sender:(Wire.Provider 0) ~receiver:Wire.Host ~key_bits:96
        ~messages ~choice
    in
    Alcotest.(check int) "receives the chosen message" messages.(choice) got
  done

let test_ot_wire_shape () =
  let s = st () in
  let wire = Wire.create () in
  let _ =
    Ot.transfer s ~wire ~sender:(Wire.Provider 0) ~receiver:Wire.Host ~key_bits:96
      ~messages:[| 1; 2; 3; 4 |] ~choice:2
  in
  let stats = Wire.stats wire in
  Alcotest.(check int) "three rounds" 3 stats.Wire.rounds;
  Alcotest.(check int) "three messages" 3 stats.Wire.messages;
  (* Measured bits within the closed-form bound (key size varies by a
     bit or two with the drawn primes). *)
  let model = Ot.wire_bits ~n:4 ~key_bits:96 in
  Alcotest.(check bool) "bits near model" true
    (abs (stats.Wire.bits - model) < 64)

let test_ot_validation () =
  let s = st () in
  let wire = Wire.create () in
  Alcotest.check_raises "choice range" (Invalid_argument "Ot.transfer: choice out of range")
    (fun () ->
      ignore
        (Ot.transfer s ~wire ~sender:(Wire.Provider 0) ~receiver:Wire.Host ~key_bits:96
           ~messages:[| 1 |] ~choice:5))

(* --- millionaires comparison -------------------------------------------------- *)

let test_compare_exhaustive_small () =
  let s = st () in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let wire = Wire.create () in
      let got =
        Compare.greater_than s ~wire ~holder_x:(Wire.Provider 0) ~holder_y:(Wire.Provider 1)
          ~bits:4 ~x ~y
      in
      if got <> (x > y) then Alcotest.failf "compare(%d, %d) = %b" x y got
    done
  done

let test_compare_random_wide () =
  let s = st () in
  for _ = 1 to 50 do
    let x = State.next_bits s 20 and y = State.next_bits s 20 in
    let wire = Wire.create () in
    let got =
      Compare.greater_than s ~wire ~holder_x:(Wire.Provider 0) ~holder_y:(Wire.Provider 1)
        ~bits:20 ~x ~y
    in
    if got <> (x > y) then Alcotest.failf "compare(%d, %d) = %b" x y got
  done

let test_compare_wire_cost_grows_with_bits () =
  let s = st () in
  let cost bits =
    let wire = Wire.create () in
    let _ =
      Compare.greater_than s ~wire ~holder_x:(Wire.Provider 0) ~holder_y:(Wire.Provider 1)
        ~bits ~x:1 ~y:0
    in
    (Wire.stats wire).Wire.bits
  in
  Alcotest.(check bool) "cost grows" true (cost 24 > cost 8)

(* --- third-party-free Protocol 2 ------------------------------------------------ *)

let test_p2_crypto_reconstruction () =
  let s = st () in
  for _ = 1 to 30 do
    let m = 2 + State.next_int s 3 in
    let inputs = Array.init m (fun _ -> [| State.next_int s (1000 / m) |]) in
    let wire = Wire.create () in
    let r =
      Protocol2_crypto.run s ~wire
        ~parties:(Array.init m (fun k -> Wire.Provider k))
        ~modulus:(1 lsl 16) ~input_bound:1000 ~inputs
    in
    let x = Array.fold_left (fun acc v -> acc + v.(0)) 0 inputs in
    Alcotest.(check int) "integer reconstruction" x (r.Protocol2_crypto.share1.(0) + r.Protocol2_crypto.share2.(0))
  done

let test_p2_crypto_cost_vs_third_party () =
  (* The paper's point: the cryptographic route costs orders of
     magnitude more communication than the third-party trick. *)
  let s = st () in
  let inputs = [| [| 3; 7; 1 |]; [| 4; 2; 9 |] |] in
  let parties = [| Wire.Provider 0; Wire.Provider 1 |] in
  let wire_tp = Wire.create () in
  let _ =
    Protocol2.run s ~wire:wire_tp ~parties ~third_party:Wire.Host ~modulus:(1 lsl 16)
      ~input_bound:100 ~inputs
  in
  let wire_crypto = Wire.create () in
  let _ =
    Protocol2_crypto.run s ~wire:wire_crypto ~parties ~modulus:(1 lsl 16) ~input_bound:100
      ~inputs
  in
  let tp = (Wire.stats wire_tp).Wire.bits and crypto = (Wire.stats wire_crypto).Wire.bits in
  Alcotest.(check bool)
    (Printf.sprintf "crypto %d bits >> third party %d bits" crypto tp)
    true
    (crypto > 20 * tp)

let test_p2_crypto_validation () =
  let s = st () in
  let wire = Wire.create () in
  Alcotest.check_raises "modulus too wide"
    (Invalid_argument "Protocol2_crypto.run: modulus too wide for the comparison") (fun () ->
      ignore
        (Protocol2_crypto.run s ~wire
           ~parties:[| Wire.Provider 0; Wire.Provider 1 |]
           ~modulus:(1 lsl 50) ~input_bound:10 ~inputs:[| [| 1 |]; [| 2 |] |]))

(* --- perfectly hiding Protocol 4 -------------------------------------------------- *)

let oblivious_workload s =
  let g = Generate.erdos_renyi_gnm s ~n:8 ~m:14 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  let log =
    Cascade.generate s planted { Cascade.num_actions = 12; seeds_per_action = 1; max_delay = 2 }
  in
  (g, log)

let test_p4_oblivious_matches_plaintext () =
  let s = st () in
  let g, log = oblivious_workload s in
  let logs = Partition.exclusive s log ~m:2 in
  let wire = Wire.create () in
  let r =
    Protocol4_oblivious.run s ~wire ~graph:g ~num_actions:12 ~logs ~modulus:(1 lsl 20) ~h:2
      ~key_bits:96
  in
  let pairs = Array.of_list (List.map fst r.Protocol4_oblivious.strengths) in
  let ct = Counters.compute log ~h:2 ~pairs in
  let expected = Link_strength.all_eq1 ct in
  List.iteri
    (fun k ((u, v), p) ->
      if abs_float (p -. expected.(k)) > 1e-3 *. (expected.(k) +. 1.) then
        Alcotest.failf "oblivious p(%d,%d) = %f vs %f" u v p expected.(k))
    r.Protocol4_oblivious.strengths;
  Alcotest.(check int) "4 transfers per arc (2 halves x 2 senders)"
    (4 * Digraph.edge_count g)
    r.Protocol4_oblivious.transfers

let test_p4_oblivious_cost_blowup () =
  (* Perfect hiding costs far more than the published-pair-set design
     on the same workload — the Sec. 5.1.1 claim, measured. *)
  let s = st () in
  let g, log = oblivious_workload s in
  let logs = Partition.exclusive s log ~m:2 in
  let wire_ob = Wire.create () in
  let _ =
    Protocol4_oblivious.run s ~wire:wire_ob ~graph:g ~num_actions:12 ~logs
      ~modulus:(1 lsl 20) ~h:2 ~key_bits:96
  in
  let r_std =
    Driver.link_strengths_exclusive s ~graph:g ~logs
      { (Protocol4.default_config ~h:2) with Protocol4.modulus = 1 lsl 20 }
  in
  let ob = (Wire.stats wire_ob).Wire.bits and std = r_std.Driver.wire.Wire.bits in
  Alcotest.(check bool)
    (Printf.sprintf "oblivious %d bits >> standard %d bits" ob std)
    true (ob > 10 * std)

let test_p4_oblivious_analytic_scaling () =
  (* The analytic model shows the O(|E| n^2) explosion at realistic
     sizes. *)
  let at n edges = Protocol4_oblivious.analytic_wire_bits ~n ~edges ~key_bits:1024 ~modulus_bits:40 in
  let small = at 100 400 and big = at 1000 4000 in
  (* 10x nodes and edges -> ~1000x transfer cost (n^2 per transfer, |E| transfers). *)
  Alcotest.(check bool) "superquadratic growth" true
    (float_of_int big /. float_of_int small > 500.)

let () =
  Alcotest.run "spe_alternatives"
    [
      ( "oblivious-transfer",
        [
          Alcotest.test_case "correctness" `Quick test_ot_correctness;
          Alcotest.test_case "wire shape" `Quick test_ot_wire_shape;
          Alcotest.test_case "validation" `Quick test_ot_validation;
        ] );
      ( "millionaires",
        [
          Alcotest.test_case "exhaustive 4-bit" `Slow test_compare_exhaustive_small;
          Alcotest.test_case "random 20-bit" `Quick test_compare_random_wide;
          Alcotest.test_case "cost grows with width" `Quick test_compare_wire_cost_grows_with_bits;
        ] );
      ( "protocol2-crypto",
        [
          Alcotest.test_case "reconstruction" `Quick test_p2_crypto_reconstruction;
          Alcotest.test_case "cost vs third party" `Quick test_p2_crypto_cost_vs_third_party;
          Alcotest.test_case "validation" `Quick test_p2_crypto_validation;
        ] );
      ( "protocol4-oblivious",
        [
          Alcotest.test_case "matches plaintext" `Quick test_p4_oblivious_matches_plaintext;
          Alcotest.test_case "cost blow-up" `Quick test_p4_oblivious_cost_blowup;
          Alcotest.test_case "analytic scaling" `Quick test_p4_oblivious_analytic_scaling;
        ] );
    ]
