(* Tests for the EM baseline (Saito et al.) and the Linear Threshold
   model: EM's monotone likelihood, ground-truth recovery on
   single-parent structures, agreement with the counting estimator
   where they must coincide, and LT spread semantics. *)

module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Em = Spe_influence.Em
module Threshold = Spe_influence.Threshold
module Maximize = Spe_influence.Maximize
module State = Spe_rng.State

let st () = State.create ~seed:139 ()

let r u a t = { Log.user = u; action = a; time = t }

(* --- EM ------------------------------------------------------------------ *)

let test_em_likelihood_monotone () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:25 ~m:120 in
  let planted = Cascade.uniform_probabilities ~p:0.35 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 40; seeds_per_action = 1; max_delay = 3 } in
  let result = Em.learn log g ~h:3 ~max_iterations:30 in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if b < a -. 1e-6 then Alcotest.failf "likelihood decreased: %f -> %f" a b;
      check rest
    | _ -> ()
  in
  check result.Em.log_likelihood;
  Alcotest.(check bool) "some iterations ran" true (result.Em.iterations >= 1)

let test_em_star_recovery () =
  (* Star rooted at 0: every leaf has one candidate parent, so EM's
     fixed point is successes / attempts — and must recover the planted
     probability. *)
  let s = st () in
  let n = 10 in
  let g = Digraph.create ~n (List.init (n - 1) (fun j -> (0, j + 1))) in
  let p_true = 0.4 in
  let planted = Cascade.uniform_probabilities ~p:p_true g in
  let log =
    Cascade.generate s planted { Cascade.num_actions = 3000; seeds_per_action = 1; max_delay = 2 }
  in
  let result = Em.learn log g ~h:2 in
  let sum = ref 0. and cnt = ref 0 in
  Digraph.iter_edges g (fun u v ->
      sum := !sum +. Em.probability result u v;
      incr cnt);
  let mean = !sum /. float_of_int !cnt in
  Alcotest.(check bool)
    (Printf.sprintf "EM mean %.3f near planted %.3f" mean p_true)
    true
    (abs_float (mean -. p_true) < 0.05)

let test_em_matches_counting_on_single_parent () =
  (* On a path graph every node has in-degree 1: EM (single candidate
     parent per success) equals b/attempts, which can differ from
     Eq. (1)'s b/a_i only through the exposure correction.  On
     cascades seeded at the head, both coincide. *)
  let s = st () in
  let n = 6 in
  let g = Digraph.create ~n (List.init (n - 1) (fun j -> (j, j + 1))) in
  let planted = Cascade.uniform_probabilities ~p:0.5 g in
  let log =
    Cascade.generate s planted { Cascade.num_actions = 500; seeds_per_action = 1; max_delay = 2 }
  in
  let result = Em.learn log g ~h:2 in
  let ct = Counters.compute_graph log ~h:2 g in
  let eq1 = Link_strength.all_eq1 ct in
  Array.iteri
    (fun k ((u, v)) ->
      let em_p = Em.probability result u v in
      (* Both estimate the same conditional frequency; allow sampling
         slack between the two denominators (a_i vs attempts). *)
      if ct.Counters.a.(u) > 30 && abs_float (em_p -. eq1.(k)) > 0.12 then
        Alcotest.failf "EM %.3f vs counting %.3f on (%d,%d)" em_p eq1.(k) u v)
    ct.Counters.pairs

let test_em_shared_credit () =
  (* Two parents always acting together at t=0, child follows at t=1 in
     every action: EM must split the credit, not double-count. *)
  let g = Digraph.create ~n:3 [ (0, 2); (1, 2) ] in
  let recs =
    List.concat_map (fun a -> [ r 0 a 0; r 1 a 0; r 2 a 1 ]) (List.init 50 (fun a -> a))
  in
  let log = Log.of_records ~num_users:3 ~num_actions:50 recs in
  let result = Em.learn log g ~h:2 in
  let p0 = Em.probability result 0 2 and p1 = Em.probability result 1 2 in
  Alcotest.(check bool) "symmetric credit" true (abs_float (p0 -. p1) < 1e-6);
  (* The pair must jointly explain certain activation: 1-(1-p)^2 -> 1,
     but each individually stays well below 1 only if EM had negative
     evidence; with none, both drift toward the boundary.  At minimum,
     the combination must explain the data: *)
  Alcotest.(check bool) "joint explanation" true (1. -. ((1. -. p0) *. (1. -. p1)) > 0.9)

let test_em_no_evidence_keeps_initial () =
  (* An arc never exposed keeps its initial probability and is reported
     as 0 by [probability] only if absent. *)
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let log = Log.empty ~num_users:2 ~num_actions:3 in
  let result = Em.learn log g ~h:2 in
  Alcotest.(check (float 0.)) "unexposed arc reports 0" 0. (Em.probability result 0 1);
  Alcotest.(check bool) "iterations bounded" true (result.Em.iterations <= 100)

let test_em_validation () =
  let g = Digraph.create ~n:3 [] in
  let log = Log.empty ~num_users:5 ~num_actions:1 in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Em.learn: log/graph user universe mismatch") (fun () ->
      ignore (Em.learn log g ~h:2));
  let log3 = Log.empty ~num_users:3 ~num_actions:1 in
  Alcotest.check_raises "bad h" (Invalid_argument "Em.learn: window must be >= 1") (fun () ->
      ignore (Em.learn log3 g ~h:0))

let test_em_overfitting_demo () =
  (* The paper's criticism: with very few traces EM drives exposed-once
     arcs to extreme probabilities.  Quantify: tiny log -> larger
     average |p - planted| than with many traces. *)
  let run actions =
    let s = State.create ~seed:140 () in
    let g = Generate.erdos_renyi_gnm s ~n:20 ~m:80 in
    let planted = Cascade.uniform_probabilities ~p:0.3 g in
    let log = Cascade.generate s planted { Cascade.num_actions = actions; seeds_per_action = 1; max_delay = 2 } in
    let result = Em.learn log g ~h:2 in
    let err = ref 0. and cnt = ref 0 in
    Digraph.iter_edges g (fun u v ->
        if Hashtbl.mem result.Em.probability (u, v) then begin
          err := !err +. abs_float (Em.probability result u v -. 0.3);
          incr cnt
        end);
    if !cnt = 0 then 0. else !err /. float_of_int !cnt
  in
  let small = run 5 and large = run 400 in
  Alcotest.(check bool)
    (Printf.sprintf "error shrinks with data: %.3f (5 traces) vs %.3f (400)" small large)
    true (large < small)

(* --- Linear Threshold ------------------------------------------------------ *)

let test_lt_deterministic_chain () =
  (* Weight 1 on each chain arc: every threshold draw activates the
     whole downstream chain. *)
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let model = { Threshold.graph = g; weight = (fun _ _ -> 1.) } in
  Threshold.validate model;
  let s = st () in
  Alcotest.(check (float 1e-9)) "full chain" 4. (Threshold.spread s model ~seeds:[ 0 ] ~samples:20);
  Alcotest.(check (float 1e-9)) "tail only" 1. (Threshold.spread s model ~seeds:[ 3 ] ~samples:20)

let test_lt_zero_weights () =
  let g = Digraph.create ~n:3 [ (0, 1); (0, 2) ] in
  let model = { Threshold.graph = g; weight = (fun _ _ -> 0.) } in
  let s = st () in
  Alcotest.(check (float 1e-9)) "no diffusion" 1. (Threshold.spread s model ~seeds:[ 0 ] ~samples:50)

let test_lt_expected_single_arc () =
  (* One arc of weight w: P(activate) = P(theta <= w) = w. *)
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let w = 0.3 in
  let model = { Threshold.graph = g; weight = (fun _ _ -> w) } in
  let s = st () in
  let spread = Threshold.spread s model ~seeds:[ 0 ] ~samples:100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "spread %.3f ~ 1 + w" spread)
    true
    (abs_float (spread -. (1. +. w)) < 0.01)

let test_lt_of_strengths_normalises () =
  let g = Digraph.create ~n:3 [ (0, 2); (1, 2) ] in
  let model = Threshold.of_strengths g [ ((0, 2), 0.9); ((1, 2), 0.9) ] in
  Threshold.validate model;
  Alcotest.(check (float 1e-9)) "rescaled to sum 1" 0.5 (model.Threshold.weight 0 2);
  (* below-1 sums stay untouched *)
  let model2 = Threshold.of_strengths g [ ((0, 2), 0.2); ((1, 2), 0.3) ] in
  Alcotest.(check (float 1e-9)) "unscaled" 0.2 (model2.Threshold.weight 0 2)

let test_lt_validate_rejects () =
  let g = Digraph.create ~n:3 [ (0, 2); (1, 2) ] in
  let model = { Threshold.graph = g; weight = (fun _ _ -> 0.8) } in
  Alcotest.check_raises "overweight"
    (Invalid_argument "Threshold.validate: in-weights exceed 1") (fun () ->
      Threshold.validate model)

let test_lt_celf_runs () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:80 in
  let model = Threshold.of_strengths g (List.map (fun e -> (e, 0.2)) (Digraph.edges g)) in
  let seeds, spread = Threshold.celf s model ~k:3 ~samples:100 in
  Alcotest.(check int) "three seeds" 3 (List.length seeds);
  Alcotest.(check bool) "spread at least seeds" true (spread >= 3.);
  let evals_celf = Maximize.evaluations () in
  let _ = Threshold.greedy s model ~k:3 ~samples:100 in
  let evals_greedy = Maximize.evaluations () in
  (* With a noisy Monte-Carlo oracle CELF can degenerate to full
     re-evaluation, but never does more work than plain greedy. *)
  Alcotest.(check bool) "celf never more expensive" true (evals_celf <= evals_greedy)

(* --- QCheck ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"EM probabilities stay in (0,1)" ~count:20 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
        let planted = Cascade.uniform_probabilities ~p:0.4 g in
        let log = Cascade.generate s planted Cascade.default_params in
        let result = Em.learn log g ~h:3 ~max_iterations:10 in
        Hashtbl.fold (fun _ p acc -> acc && p > 0. && p < 1.) result.Em.probability true);
    Test.make ~name:"LT spread monotone in seeds" ~count:20 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
        let model = Threshold.of_strengths g (List.map (fun e -> (e, 0.3)) (Digraph.edges g)) in
        let s1 = State.create ~seed:1 () and s2 = State.create ~seed:1 () in
        Threshold.spread s1 model ~seeds:[ 0 ] ~samples:300
        <= Threshold.spread s2 model ~seeds:[ 0; 1; 2 ] ~samples:300 +. 0.5);
  ]

let () =
  Alcotest.run "spe_em_threshold"
    [
      ( "em",
        [
          Alcotest.test_case "likelihood monotone" `Quick test_em_likelihood_monotone;
          Alcotest.test_case "star recovery" `Slow test_em_star_recovery;
          Alcotest.test_case "single-parent vs counting" `Quick test_em_matches_counting_on_single_parent;
          Alcotest.test_case "shared credit" `Quick test_em_shared_credit;
          Alcotest.test_case "no evidence" `Quick test_em_no_evidence_keeps_initial;
          Alcotest.test_case "validation" `Quick test_em_validation;
          Alcotest.test_case "overfitting demo" `Quick test_em_overfitting_demo;
        ] );
      ( "linear-threshold",
        [
          Alcotest.test_case "deterministic chain" `Quick test_lt_deterministic_chain;
          Alcotest.test_case "zero weights" `Quick test_lt_zero_weights;
          Alcotest.test_case "single arc expectation" `Quick test_lt_expected_single_arc;
          Alcotest.test_case "normalisation" `Quick test_lt_of_strengths_normalises;
          Alcotest.test_case "validation" `Quick test_lt_validate_rejects;
          Alcotest.test_case "celf runs" `Quick test_lt_celf_runs;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
