test/test_em_threshold.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Random Spe_actionlog Spe_graph Spe_influence Spe_rng Test
