test/test_privacy.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Random Spe_actionlog Spe_graph Spe_influence Spe_privacy Spe_rng Test
