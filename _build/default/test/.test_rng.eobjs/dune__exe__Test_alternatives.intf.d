test/test_alternatives.mli:
