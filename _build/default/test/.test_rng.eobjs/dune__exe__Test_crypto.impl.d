test/test_crypto.ml: Alcotest Array List QCheck QCheck_alcotest Random Spe_bignum Spe_crypto Spe_rng Test
