test/test_core.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Random Spe_actionlog Spe_core Spe_graph Spe_influence Spe_mpc Spe_rng Test
