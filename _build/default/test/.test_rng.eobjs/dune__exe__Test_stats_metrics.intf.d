test/test_stats_metrics.mli:
