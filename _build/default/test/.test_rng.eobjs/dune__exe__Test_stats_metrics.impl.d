test/test_stats_metrics.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Random Spe_graph Spe_rng Spe_stats Test
