test/test_rng.ml: Alcotest Array Hashtbl Int64 List QCheck QCheck_alcotest Random Spe_rng Test
