test/test_actionlog.mli:
