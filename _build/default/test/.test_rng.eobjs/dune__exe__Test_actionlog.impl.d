test/test_actionlog.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Random Spe_actionlog Spe_graph Spe_rng Test
