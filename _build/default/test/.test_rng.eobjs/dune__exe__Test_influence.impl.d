test/test_influence.ml: Alcotest Array Float Hashtbl List Option Printf QCheck QCheck_alcotest Random Spe_actionlog Spe_graph Spe_influence Spe_rng Test
