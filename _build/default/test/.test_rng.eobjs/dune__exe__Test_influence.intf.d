test/test_influence.mli:
