test/test_em_threshold.mli:
