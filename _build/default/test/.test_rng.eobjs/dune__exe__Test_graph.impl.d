test/test_graph.ml: Alcotest Array List QCheck QCheck_alcotest Random Spe_graph Spe_rng Test
