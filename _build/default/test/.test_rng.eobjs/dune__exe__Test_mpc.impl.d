test/test_mpc.ml: Alcotest Array Bytes Float Gen Int64 List Printf QCheck QCheck_alcotest Random Spe_bignum Spe_mpc Spe_rng Test
