test/test_expt.ml: Alcotest Array List Printf Spe_actionlog Spe_expt Spe_graph Spe_mpc Spe_privacy
