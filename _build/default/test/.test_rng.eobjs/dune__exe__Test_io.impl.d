test/test_io.ml: Alcotest Array Filename Fun List Printf Spe_actionlog Spe_core Spe_graph Spe_influence Spe_rng Sys
