test/test_cost.ml: Alcotest Array List Printf Spe_actionlog Spe_core Spe_cost Spe_graph Spe_influence Spe_mpc Spe_rng
