test/test_bignum.ml: Alcotest List Printf QCheck QCheck_alcotest Random Spe_bignum Spe_rng Test
