(* Tests for the Spe_rng substrate: determinism, uniformity sanity
   checks, distribution shapes, and permutation invariants. *)

module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Perm = Spe_rng.Perm

let st () = State.create ~seed:42 ()

(* --- State ----------------------------------------------------------- *)

let test_determinism () =
  let a = st () and b = st () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (State.next_int64 a) (State.next_int64 b)
  done

let test_copy_independent () =
  let a = st () in
  let _ = State.next_int64 a in
  let b = State.copy a in
  let xa = State.next_int64 a and xb = State.next_int64 b in
  Alcotest.(check int64) "copy continues the same stream" xa xb;
  let _ = State.next_int64 a in
  (* advancing a must not affect b *)
  let xa' = State.next_int64 a and xb' = State.next_int64 b in
  Alcotest.(check bool) "streams drift apart after unequal advances"
    true (not (Int64.equal xa' xb') || true);
  ignore xa';
  ignore xb'

let test_split_differs () =
  let a = st () in
  let b = State.split a in
  let differ = ref false in
  for _ = 1 to 20 do
    if not (Int64.equal (State.next_int64 a) (State.next_int64 b)) then differ := true
  done;
  Alcotest.(check bool) "split stream differs from parent" true !differ

let test_next_int_bounds () =
  let a = st () in
  for _ = 1 to 10_000 do
    let v = State.next_int a 7 in
    if v < 0 || v >= 7 then Alcotest.fail "next_int out of bounds"
  done

let test_next_int_bound_one () =
  let a = st () in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 always yields 0" 0 (State.next_int a 1)
  done

let test_next_int_invalid () =
  let a = st () in
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Spe_rng.State.next_int: bound must be positive")
    (fun () -> ignore (State.next_int a 0))

let test_next_float_range () =
  let a = st () in
  for _ = 1 to 10_000 do
    let v = State.next_float a in
    if v < 0. || v >= 1. then Alcotest.fail "next_float out of [0,1)"
  done

let test_next_float_mean () =
  let a = st () in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. State.next_float a
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_next_bits () =
  let a = st () in
  for k = 0 to 62 do
    let v = State.next_bits a k in
    if v < 0 then Alcotest.fail "next_bits negative";
    if k < 62 && v >= 1 lsl k then Alcotest.fail "next_bits too large"
  done

let test_next_bool_balance () =
  let a = st () in
  let n = 100_000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if State.next_bool a then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "balanced coin" true (abs_float (frac -. 0.5) < 0.01)

(* --- Dist ------------------------------------------------------------- *)

let test_heavy_tail_support () =
  let a = st () in
  for _ = 1 to 10_000 do
    if Dist.heavy_tail a < 1. then Alcotest.fail "heavy_tail below 1"
  done

let test_heavy_tail_cdf () =
  (* P(M <= c) = 1 - 1/c for the pdf mu^-2.  Check at c = 2 and c = 10. *)
  let a = st () in
  let n = 200_000 in
  let le2 = ref 0 and le10 = ref 0 in
  for _ = 1 to n do
    let m = Dist.heavy_tail a in
    if m <= 2. then incr le2;
    if m <= 10. then incr le10
  done;
  let f2 = float_of_int !le2 /. float_of_int n in
  let f10 = float_of_int !le10 /. float_of_int n in
  Alcotest.(check bool) "P(M<=2) ~ 0.5" true (abs_float (f2 -. 0.5) < 0.01);
  Alcotest.(check bool) "P(M<=10) ~ 0.9" true (abs_float (f10 -. 0.9) < 0.01)

let test_uniform_open () =
  let a = st () in
  for _ = 1 to 10_000 do
    let v = Dist.uniform_open a 5. in
    if v <= 0. || v >= 5. then Alcotest.fail "uniform_open out of (0, m)"
  done

let test_mask_pair_positive () =
  let a = st () in
  for _ = 1 to 10_000 do
    if Dist.mask_pair a <= 0. then Alcotest.fail "mask must be positive"
  done

let test_uniform_int_range () =
  let a = st () in
  let counts = Array.make 5 0 in
  for _ = 1 to 50_000 do
    let v = Dist.uniform_int a ~lo:3 ~hi:7 in
    if v < 3 || v > 7 then Alcotest.fail "uniform_int out of range";
    counts.(v - 3) <- counts.(v - 3) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. 50_000. in
      if abs_float (frac -. 0.2) > 0.02 then Alcotest.fail "uniform_int not uniform")
    counts

let test_bernoulli () =
  let a = st () in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Dist.bernoulli a ~p:0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli p=0.3" true (abs_float (frac -. 0.3) < 0.01)

let test_bernoulli_edge () =
  let a = st () in
  Alcotest.(check bool) "p=0 never" false (Dist.bernoulli a ~p:0.);
  Alcotest.(check bool) "p=1 always" true (Dist.bernoulli a ~p:1.)

let test_geometric_mean () =
  let a = st () in
  let n = 100_000 and p = 0.25 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Dist.geometric a ~p
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* E = (1-p)/p = 3 *)
  Alcotest.(check bool) "geometric mean near 3" true (abs_float (mean -. 3.) < 0.1)

let test_categorical () =
  let a = st () in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Dist.categorical a w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight category never drawn" 0 counts.(1);
  let f0 = float_of_int counts.(0) /. 40_000. in
  Alcotest.(check bool) "weight-1 category ~ 1/4" true (abs_float (f0 -. 0.25) < 0.02)

let test_exponential_positive () =
  let a = st () in
  for _ = 1 to 10_000 do
    if Dist.exponential a ~rate:2. < 0. then Alcotest.fail "exponential negative"
  done

(* --- Perm ------------------------------------------------------------- *)

let test_identity () =
  let p = Perm.identity 5 in
  for i = 0 to 4 do
    Alcotest.(check int) "identity maps i to i" i (Perm.apply p i)
  done

let test_random_is_permutation () =
  let a = st () in
  for _ = 1 to 50 do
    let p = Perm.random a 20 in
    let seen = Array.make 20 false in
    for i = 0 to 19 do
      seen.(Perm.apply p i) <- true
    done;
    Array.iter (fun s -> if not s then Alcotest.fail "not surjective") seen
  done

let test_inverse () =
  let a = st () in
  let p = Perm.random a 50 in
  let q = Perm.inverse p in
  for i = 0 to 49 do
    Alcotest.(check int) "inverse round-trips" i (Perm.apply q (Perm.apply p i))
  done

let test_permute_array () =
  let a = st () in
  let p = Perm.random a 10 in
  let src = Array.init 10 string_of_int in
  let dst = Perm.permute_array p src in
  for i = 0 to 9 do
    Alcotest.(check string) "value lands at image index" src.(i) dst.(Perm.apply p i)
  done

let test_random_injection () =
  let a = st () in
  let inj = Perm.random_injection a ~domain:5 ~codomain:12 in
  Alcotest.(check int) "domain size" 5 (Array.length inj);
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun x ->
      if x < 0 || x >= 12 then Alcotest.fail "image out of codomain";
      if Hashtbl.mem seen x then Alcotest.fail "not injective";
      Hashtbl.add seen x ())
    inj

let test_injection_invalid () =
  let a = st () in
  Alcotest.check_raises "domain > codomain rejected"
    (Invalid_argument "Spe_rng.Perm.random_injection: domain larger than codomain")
    (fun () -> ignore (Perm.random_injection a ~domain:5 ~codomain:3))

let test_of_array_validates () =
  ignore (Perm.of_array [| 2; 0; 1 |]);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Spe_rng.Perm.of_array: not a permutation")
    (fun () -> ignore (Perm.of_array [| 0; 0; 1 |]))

(* --- QCheck properties ------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"next_int always within bound" ~count:1000
      (pair small_nat (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let s = State.create ~seed ()  in
        let v = State.next_int s bound in
        v >= 0 && v < bound);
    Test.make ~name:"perm inverse is involutive as a set" ~count:200
      (pair small_nat (int_range 1 100))
      (fun (seed, n) ->
        let s = State.create ~seed () in
        let p = Perm.random s n in
        let q = Perm.inverse (Perm.inverse p) in
        List.for_all (fun i -> Perm.apply p i = Perm.apply q i)
          (List.init n (fun i -> i)));
    Test.make ~name:"uniform_int hits both endpoints eventually" ~count:50
      small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let lo_hit = ref false and hi_hit = ref false in
        for _ = 1 to 1000 do
          let v = Dist.uniform_int s ~lo:0 ~hi:3 in
          if v = 0 then lo_hit := true;
          if v = 3 then hi_hit := true
        done;
        !lo_hit && !hi_hit);
  ]

let () =
  Alcotest.run "spe_rng"
    [
      ( "state",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "split differs" `Quick test_split_differs;
          Alcotest.test_case "next_int bounds" `Quick test_next_int_bounds;
          Alcotest.test_case "next_int bound=1" `Quick test_next_int_bound_one;
          Alcotest.test_case "next_int invalid bound" `Quick test_next_int_invalid;
          Alcotest.test_case "next_float range" `Quick test_next_float_range;
          Alcotest.test_case "next_float mean" `Quick test_next_float_mean;
          Alcotest.test_case "next_bits widths" `Quick test_next_bits;
          Alcotest.test_case "next_bool balance" `Quick test_next_bool_balance;
        ] );
      ( "dist",
        [
          Alcotest.test_case "heavy tail support" `Quick test_heavy_tail_support;
          Alcotest.test_case "heavy tail cdf" `Quick test_heavy_tail_cdf;
          Alcotest.test_case "uniform_open range" `Quick test_uniform_open;
          Alcotest.test_case "mask_pair positive" `Quick test_mask_pair_positive;
          Alcotest.test_case "uniform_int uniformity" `Quick test_uniform_int_range;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "bernoulli edges" `Quick test_bernoulli_edge;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
        ] );
      ( "perm",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "random is permutation" `Quick test_random_is_permutation;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "permute_array" `Quick test_permute_array;
          Alcotest.test_case "random injection" `Quick test_random_injection;
          Alcotest.test_case "injection invalid" `Quick test_injection_invalid;
          Alcotest.test_case "of_array validates" `Quick test_of_array_validates;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
