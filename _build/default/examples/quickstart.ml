(* Quickstart: the smallest end-to-end run of the library.

   A host owns a 30-user social graph; two service providers own
   private purchase logs.  Together they compute the influence strength
   of every social link — without the host seeing any log record and
   without the providers learning which links exist.

     dune exec examples/quickstart.exe *)

module State = Spe_rng.State
module Generate = Spe_graph.Generate
module Digraph = Spe_graph.Digraph
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Protocol4 = Spe_core.Protocol4
module Driver = Spe_core.Driver
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Wire = Spe_mpc.Wire

let () =
  let rng = State.create ~seed:2014 () in

  (* The host's asset: a directed social graph (arc (u, v) = "v follows
     u").  Here: a small scale-free network. *)
  let graph = Generate.barabasi_albert rng ~n:30 ~m:2 in
  Printf.printf "Social graph: %d users, %d arcs (host's private asset)\n"
    (Digraph.n graph) (Digraph.edge_count graph);

  (* The providers' assets: purchase histories.  We synthesise them by
     simulating word-of-mouth cascades with a planted ground truth of
     30%% influence per link, then splitting the records between two
     providers (each action sold by exactly one provider — the
     exclusive case). *)
  let planted = Cascade.uniform_probabilities ~p:0.3 graph in
  let log =
    Cascade.generate rng planted
      { Cascade.num_actions = 40; seeds_per_action = 1; max_delay = 3 }
  in
  let logs = Partition.exclusive rng log ~m:2 in
  Array.iteri
    (fun k l -> Printf.printf "Provider %d: %d private purchase records\n" (k + 1)
        (Spe_actionlog.Log.size l))
    logs;

  (* Run the secure pipeline: Protocol 4 with a memory window of h = 3
     time steps and the default privacy parameters (S = 2^40, c = 2). *)
  let config = Protocol4.default_config ~h:3 in
  let result = Driver.link_strengths_exclusive rng ~graph ~logs config in

  (* The host now holds p_(i,j) for every real arc. *)
  let top =
    List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) result.Driver.strengths
    |> List.filteri (fun i _ -> i < 8)
  in
  Printf.printf "\nTop influence links computed by the host:\n";
  List.iter
    (fun ((u, v), p) -> Printf.printf "  user %2d -> user %2d : p = %.3f\n" u v p)
    top;

  (* Sanity: the secure result equals the plaintext computation on the
     (never-materialised-in-deployment) unified log. *)
  let ct = Counters.compute log ~h:3 ~pairs:result.Driver.detail.Protocol4.pairs in
  let reference = Link_strength.restrict_to_graph ct (Link_strength.all_eq1 ct) graph in
  let max_err =
    List.fold_left2
      (fun acc (_, a) (_, b) -> Float.max acc (abs_float (a -. b)))
      0. reference result.Driver.strengths
  in
  Printf.printf "\nMax deviation from the plaintext reference: %.2e\n" max_err;

  (* What it cost. *)
  let w = result.Driver.wire in
  Printf.printf "Communication: %d rounds, %d messages, %.1f KiB\n" w.Wire.rounds
    w.Wire.messages
    (float_of_int w.Wire.bits /. 8192.)
