(* The Sec. 8 future-work settings, end to end:

   - MULTIPLE HOSTS: the social graph is split between two platforms
     (think: a microblog and a photo app, same user base).  One shared
     secure batch serves both hosts, each learning only its own arcs'
     strengths.
   - USER ATTRIBUTES: users carry a demographic group; the host refines
     sparse per-link estimates by shrinking them toward the group-pair
     mean, and we measure the accuracy gain against the planted truth.

     dune exec examples/platforms.exe *)

module State = Spe_rng.State
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Counters = Spe_influence.Counters
module Attributes = Spe_influence.Attributes
module Link_strength = Spe_influence.Link_strength
module Wire = Spe_mpc.Wire
module Protocol4 = Spe_core.Protocol4
module Protocol4_multi_host = Spe_core.Protocol4_multi_host
module Correlation = Spe_stats.Correlation

let () =
  let rng = State.create ~seed:88 () in
  let n = 50 in

  (* Ground truth: a two-community network where influence is strong
     within a community and weak across. *)
  let g = Generate.erdos_renyi_gnm rng ~n ~m:400 in
  let grouping = Attributes.random_grouping rng ~n ~num_groups:2 in
  let truth u v =
    if grouping.Attributes.group_of.(u) = grouping.Attributes.group_of.(v) then 0.45 else 0.05
  in
  let planted = { Cascade.graph = g; probability = truth } in
  let log =
    Cascade.generate rng planted
      { Cascade.num_actions = 60; seeds_per_action = 2; max_delay = 2 }
  in
  let logs = Partition.exclusive rng log ~m:3 in

  (* --- multiple hosts -------------------------------------------------- *)
  (* Split the arcs across two platforms. *)
  let buckets = Array.make 2 [] in
  Digraph.iter_edges g (fun u v ->
      let j = State.next_int rng 2 in
      buckets.(j) <- (u, v) :: buckets.(j));
  let platforms = Array.map (fun arcs -> Digraph.create ~n arcs) buckets in
  Printf.printf "Two platforms over the same %d users: %d and %d arcs\n" n
    (Digraph.edge_count platforms.(0))
    (Digraph.edge_count platforms.(1));

  let wire = Wire.create () in
  let config = Protocol4.default_config ~h:2 in
  let results = Protocol4_multi_host.run rng ~wire ~graphs:platforms ~logs config in
  Array.iter
    (fun r ->
      Printf.printf "  platform %d learned %d link strengths\n"
        (r.Protocol4_multi_host.host + 1)
        (List.length r.Protocol4_multi_host.strengths))
    results;
  let w = Wire.stats wire in
  Printf.printf "  one shared secure batch: %d rounds, %d messages, %.1f KiB\n"
    w.Wire.rounds w.Wire.messages
    (float_of_int w.Wire.bits /. 8192.);

  (* How good are the platform-side estimates against the planted
     truth? *)
  let all_strengths =
    Array.to_list results |> List.concat_map (fun r -> r.Protocol4_multi_host.strengths)
  in
  let est = Array.of_list (List.map snd all_strengths) in
  let tru = Array.of_list (List.map (fun ((u, v), _) -> truth u v) all_strengths) in
  Printf.printf "  Spearman(learned, planted) over all %d arcs: %.3f\n\n"
    (Array.length est)
    (Correlation.spearman est tru);

  (* --- attributes -------------------------------------------------------- *)
  Printf.printf "Attribute-informed shrinkage (host-side refinement):\n";
  let ct = Counters.compute_graph log ~h:2 g in
  let pooled = Attributes.pooled_strengths ct grouping in
  Printf.printf "  pooled group-pair strengths:\n";
  for a = 0 to 1 do
    for b = 0 to 1 do
      Printf.printf "    group %d -> group %d : %.3f (planted %.2f)\n" a b pooled.(a).(b)
        (if a = b then 0.45 else 0.05)
    done
  done;
  let mse est = Attributes.mse_vs_truth ~estimates:est ~pairs:ct.Counters.pairs ~truth in
  Printf.printf "  per-link MSE against planted truth:\n";
  List.iter
    (fun lambda ->
      let e = Attributes.shrunk_strengths ct grouping ~lambda in
      Printf.printf "    lambda = %5.1f : mse %.4f%s\n" lambda (mse e)
        (if lambda = 0. then "  (= plain Eq. 1)" else ""))
    [ 0.; 1.; 5.; 20.; 100. ];
  Printf.printf
    "\n  Shrinking toward the group means reduces the error of the noisy\n\
    \  per-link estimates; the best lambda depends on the trace budget (the\n\
    \  bench's estimator ablation sweeps it) - the Sec. 8 intuition, quantified.\n"
