(* A privacy audit of the masking machinery, from the data-protection
   officer's point of view:

   - what posterior belief can the host form about a user's activity
     counter after seeing a masked value (Theorems 4.2-4.4)?
   - how often does Protocol 2's wrap-around trick leak a bound, and
     how must S be sized to make that negligible (Theorem 4.1 and the
     Sec. 5.1.1 rule)?
   - how much does an adversary's guess actually improve (the Sec. 7.2
     gain experiment)?

     dune exec examples/privacy_audit.exe *)

module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Posterior = Spe_privacy.Posterior
module Gain = Spe_privacy.Gain
module Leakage = Spe_privacy.Leakage

let () =
  let a = 10 in
  Printf.printf "Setting: activity counters range over {0..%d} (A = %d).\n\n" a a;

  (* 1. Posterior beliefs. *)
  Printf.printf "1. What the host believes about x after seeing y = r * x\n";
  Printf.printf "   (uniform prior; each row is the posterior over x):\n\n";
  let prior = Posterior.uniform_prior ~bound:a in
  Printf.printf "   %8s |" "y";
  for x = 0 to a do
    Printf.printf " x=%-2d " x
  done;
  Printf.printf "\n";
  List.iter
    (fun y ->
      let post = Posterior.posterior prior ~y in
      Printf.printf "   %8.2f |" y;
      Array.iter (fun p -> Printf.printf " %.3f" p) post;
      Printf.printf "\n")
    [ 0.; 0.5; 2.; 5.; 9.; 15.; 100. ];
  Printf.printf
    "\n   Note: y = 0 pins x = 0 (the insensitive direction); any y > 0 leaves\n\
    \   every positive x plausible (Theorem 4.3), and all y > A induce the same\n\
    \   posterior - large observations carry no extra information.\n\n";

  (* 2. The actual guessing gain. *)
  Printf.printf "2. Guessing gain from one masked observation (Sec. 7.2, 1000 trials/x):\n\n";
  List.iter
    (fun (name, prior) ->
      let s = State.create ~seed:9 () in
      let r = Gain.run s ~prior ~trials_per_x:1000 in
      Printf.printf "   %-22s average gain %+.4f, helps in %.0f%% of trials\n" name
        r.Gain.average
        (100. *. r.Gain.positive_fraction))
    [
      ("uniform prior", Posterior.uniform_prior ~bound:a);
      ("unimodal prior", Posterior.unimodal_prior ~bound:a);
      ("geometric prior", Posterior.geometric_prior ~bound:a ~p:0.35);
    ];
  Printf.printf "\n";

  (* 3. Protocol 2 leak budget. *)
  Printf.printf "3. Protocol 2 wrap-around leaks (Theorem 4.1), x = A/2:\n\n";
  Printf.printf "   %10s | %12s | %12s\n" "log2 S" "P2 leak" "P3 leak (<=)";
  List.iter
    (fun bits ->
      let modulus = 1 lsl bits in
      let t = Leakage.theoretical ~modulus ~input_bound:a ~x:(a / 2) in
      Printf.printf "   %10d | %12.2e | %12.2e\n" bits
        (t.Leakage.p2_lower +. t.Leakage.p2_upper)
        t.Leakage.p3_lower)
    [ 10; 20; 30; 40 ];
  let counters = 100_000 in
  let s_req = Leakage.required_modulus ~input_bound:a ~counters ~epsilon:0.001 in
  Printf.printf
    "\n   To keep the chance of leaking anything across %d shared counters below\n\
    \   0.1%%, Sec. 5.1.1 prescribes S >= %d (about 2^%.0f).\n\n"
    counters s_req
    (Float.round (log (float_of_int s_req) /. log 2.));

  (* 3b. How much uncertainty survives the observation, in bits. *)
  Printf.printf "3b. Residual uncertainty after one masked observation (bits):\n\n";
  List.iter
    (fun (name, (prior : Posterior.prior)) ->
      let s = State.create ~seed:11 () in
      let before = Posterior.entropy (prior :> float array) in
      let after = Posterior.expected_posterior_entropy s prior ~samples:5000 in
      Printf.printf "   %-18s H(prior) = %.3f   E[H(posterior)] = %.3f  (%.0f%% retained)\n"
        name before after
        (100. *. after /. before))
    [
      ("uniform prior", Posterior.uniform_prior ~bound:a);
      ("unimodal prior", Posterior.unimodal_prior ~bound:a);
    ];
  Printf.printf "\n";

  (* 4. A mini empirical confirmation at a deliberately weak S. *)
  Printf.printf "4. Empirical confirmation at a deliberately weak S = 2^8:\n\n";
  let st = State.create ~seed:10 () in
  let o = Leakage.monte_carlo st ~modulus:(1 lsl 8) ~input_bound:a ~x:5 ~trials:50_000 in
  let t = Leakage.theoretical ~modulus:(1 lsl 8) ~input_bound:a ~x:5 in
  Printf.printf "   P2 leaks measured %.4f vs theory %.4f\n"
    (float_of_int (o.Leakage.p2_lower_hits + o.Leakage.p2_upper_hits) /. 50_000.)
    (t.Leakage.p2_lower +. t.Leakage.p2_upper);
  Printf.printf "   P3 leaks measured %.4f vs bound %.4f\n"
    (float_of_int (o.Leakage.p3_lower_hits + o.Leakage.p3_upper_hits) /. 50_000.)
    (t.Leakage.p3_lower +. t.Leakage.p3_upper)
