(* The introduction's motivating scenario: two bookstores selling the
   same catalogue (the non-exclusive case).

   User u is influenced by her friend to buy a book — but u bought it
   from store P1 while her friend bought it from store P2.  Neither
   store alone has any evidence of the influence episode; only the
   conjoined (privately aggregated) logs reveal it.  This example
   quantifies how much influence signal each store misses on its own
   and shows Protocol 5 + Protocol 4 recovering the full picture
   without the stores disclosing records to each other.

     dune exec examples/bookstores.exe *)

module State = Spe_rng.State
module Generate = Spe_graph.Generate
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Counters = Spe_influence.Counters
module Protocol4 = Spe_core.Protocol4
module Protocol5 = Spe_core.Protocol5
module Driver = Spe_core.Driver

let total_episodes log g ~h =
  let ct = Counters.compute_graph log ~h g in
  Array.fold_left ( + ) 0 ct.Counters.b

let () =
  let rng = State.create ~seed:1813 () in
  let h = 3 in

  (* A 60-reader social network and 50 book titles propagating through
     it by word of mouth. *)
  let graph = Generate.watts_strogatz rng ~n:60 ~k:4 ~beta:0.2 in
  let planted = Cascade.uniform_probabilities ~p:0.35 graph in
  let log =
    Cascade.generate rng planted
      { Cascade.num_actions = 50; seeds_per_action = 1; max_delay = 3 }
  in

  (* Every book is sold by both stores; each individual purchase goes
     to one of them uniformly.  That is one action class supported by
     both providers. *)
  let spec =
    {
      Partition.action_class = Array.make 50 0;
      class_providers = [| [| 0; 1 |] |];
      m = 2;
    }
  in
  let stores = Partition.non_exclusive rng log ~spec in

  (* How much influence evidence does each store see alone? *)
  let full = total_episodes log graph ~h in
  Printf.printf "Influence episodes (pairs \"friend bought, follower bought within %d steps\"):\n" h;
  Printf.printf "  complete picture (conjoined logs) : %4d\n" full;
  Array.iteri
    (fun k store ->
      let alone = total_episodes store graph ~h in
      Printf.printf "  store %d alone                     : %4d (misses %d%%)\n" (k + 1)
        alone
        (if full = 0 then 0 else (full - alone) * 100 / full))
    stores;

  (* The secure fix: Protocol 5 aggregates the class counters through a
     trusted third party (here the host, since both stores support the
     class), with the enhanced obfuscation — renamed users and books,
     shift-ciphered time stamps, fake-user padding.  Protocol 4 then
     computes the link strengths as in the exclusive case. *)
  let config = Protocol4.default_config ~h in
  let secure =
    Driver.link_strengths_non_exclusive rng ~graph ~logs:stores ~spec
      ~obfuscation:Protocol5.Enhanced config
  in

  (* Reference: the plaintext strengths on the conjoined log. *)
  let ct = Counters.compute log ~h ~pairs:secure.Driver.detail.Protocol4.pairs in
  let reference =
    Spe_influence.Link_strength.restrict_to_graph ct
      (Spe_influence.Link_strength.all_eq1 ct)
      graph
  in
  let max_err =
    List.fold_left2
      (fun acc (_, a) (_, b) -> Float.max acc (abs_float (a -. b)))
      0. reference secure.Driver.strengths
  in
  Printf.printf
    "\nSecure non-exclusive pipeline (Protocol 5 enhanced + Protocol 4):\n";
  Printf.printf "  link strengths recovered for %d arcs, max deviation %.2e\n"
    (List.length secure.Driver.strengths)
    max_err;

  (* What would a store estimate for its strongest link if it refused
     to cooperate?  Compare the conjoined estimate on the same arc. *)
  let ct1 = Counters.compute stores.(0) ~h ~pairs:secure.Driver.detail.Protocol4.pairs in
  let alone1 =
    Spe_influence.Link_strength.restrict_to_graph ct1
      (Spe_influence.Link_strength.all_eq1 ct1)
      graph
  in
  let (best_arc, best_joint), best_alone =
    List.fold_left2
      (fun ((_, bj), _ as acc) (arc, pj) (_, pa) ->
        if pj > bj then ((arc, pj), pa) else acc)
      (((0, 0), neg_infinity), 0.)
      reference alone1
  in
  let u, v = best_arc in
  Printf.printf "\nStrongest link %d -> %d:\n" u v;
  Printf.printf "  conjoined estimate : %.3f\n" best_joint;
  Printf.printf "  store 1 alone      : %.3f  <- systematically underestimated\n" best_alone;
  Printf.printf "\nCommunication: %d rounds, %d messages, %.1f KiB\n"
    secure.Driver.wire.Spe_mpc.Wire.rounds secure.Driver.wire.Spe_mpc.Wire.messages
    (float_of_int secure.Driver.wire.Spe_mpc.Wire.bits /. 8192.)
