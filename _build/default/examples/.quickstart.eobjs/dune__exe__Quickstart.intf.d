examples/quickstart.mli:
