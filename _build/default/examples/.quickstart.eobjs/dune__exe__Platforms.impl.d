examples/platforms.ml: Array List Printf Spe_actionlog Spe_core Spe_graph Spe_influence Spe_mpc Spe_rng Spe_stats
