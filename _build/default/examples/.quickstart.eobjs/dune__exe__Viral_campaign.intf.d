examples/viral_campaign.mli:
