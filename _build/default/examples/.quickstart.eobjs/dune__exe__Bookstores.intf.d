examples/bookstores.mli:
