examples/platforms.mli:
