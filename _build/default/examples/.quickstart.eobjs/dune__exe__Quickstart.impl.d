examples/quickstart.ml: Array Float List Printf Spe_actionlog Spe_core Spe_graph Spe_influence Spe_mpc Spe_rng Stdlib
