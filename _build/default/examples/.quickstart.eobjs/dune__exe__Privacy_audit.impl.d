examples/privacy_audit.ml: Array Float List Printf Spe_privacy Spe_rng
