(* A full viral-marketing pipeline on top of the secure protocols:

   1. three providers and the host securely estimate link strengths
      (Protocol 4) and user influence scores (Protocol 6 + the
      denominator machinery);
   2. the host feeds the learned strengths into influence maximisation
      (greedy/CELF, Kempe et al.) to pick campaign seeds;
   3. we simulate the campaign on the planted ground truth and compare
      seed-selection strategies: CELF on learned strengths, top
      influence scores, top out-degree, and random.

     dune exec examples/viral_campaign.exe *)

module State = Spe_rng.State
module Generate = Spe_graph.Generate
module Digraph = Spe_graph.Digraph
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Maximize = Spe_influence.Maximize
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver

let top_k k score =
  (* Indices of the k largest entries. *)
  let idx = Array.init (Array.length score) (fun i -> i) in
  Array.sort (fun a b -> Stdlib.compare score.(b) score.(a)) idx;
  Array.to_list (Array.sub idx 0 k)

let () =
  let rng = State.create ~seed:66 () in
  let n = 80 and k = 5 in

  (* Ground truth: scale-free network, heterogeneous link strengths. *)
  let graph = Generate.barabasi_albert rng ~n ~m:3 in
  let planted = Cascade.random_probabilities rng ~lo:0.01 ~hi:0.12 graph in
  Printf.printf "Network: %d users, %d arcs; planted strengths in [0.01, 0.12]\n" n
    (Digraph.edge_count graph);

  (* History: 600 past product propagations, records scattered over
     three providers (exclusive catalogues). *)
  let log =
    Cascade.generate rng planted
      { Cascade.num_actions = 600; seeds_per_action = 2; max_delay = 3 }
  in
  let logs = Partition.exclusive rng log ~m:3 in

  (* Secure estimation. *)
  let link_result =
    Driver.link_strengths_exclusive rng ~graph ~logs (Protocol4.default_config ~h:3)
  in
  Printf.printf "Protocol 4: learned %d link strengths (%.1f KiB of messages)\n"
    (List.length link_result.Driver.strengths)
    (float_of_int link_result.Driver.wire.Spe_mpc.Wire.bits /. 8192.);

  let score_result =
    Driver.user_scores_exclusive rng ~graph ~logs ~tau:8 ~modulus:(1 lsl 30)
      { Protocol6.default_config with Protocol6.key_bits = 128 }
  in
  Printf.printf "Protocol 6: learned %d user influence scores (%.1f KiB of messages)\n"
    (Array.length score_result.Driver.scores)
    (float_of_int score_result.Driver.wire.Spe_mpc.Wire.bits /. 8192.);

  (* Seed selection strategies. *)
  let learned_model = Maximize.of_strengths graph link_result.Driver.strengths in
  let celf_rng = State.create ~seed:67 () in
  let celf_seeds, _ = Maximize.celf celf_rng learned_model ~k ~samples:300 in

  (* Reverse influence sampling on the same learned model (the
     scalable engine: spread estimation amortised across seeds). *)
  let rr = Spe_influence.Ris.sample (State.create ~seed:71 ()) learned_model ~count:30_000 in
  let ris_seeds = Spe_influence.Ris.select rr ~k in

  (* Linear-threshold view of the same learned strengths. *)
  let lt_model = Spe_influence.Threshold.of_strengths graph link_result.Driver.strengths in
  let lt_seeds, _ =
    Spe_influence.Threshold.celf (State.create ~seed:72 ()) lt_model ~k ~samples:150
  in

  let score_seeds = top_k k score_result.Driver.scores in
  let degree_seeds = top_k k (Array.init n (fun v -> float_of_int (Digraph.out_degree graph v))) in
  let random_seeds =
    let s = State.create ~seed:68 () in
    List.init k (fun _ -> State.next_int s n)
  in

  (* Evaluate every strategy on the *planted* model — the real world
     the campaign will run in. *)
  let truth_model =
    { Maximize.graph; probability = planted.Cascade.probability }
  in
  let eval name seeds =
    let s = State.create ~seed:69 () in
    let spread = Maximize.spread s truth_model ~seeds ~samples:2000 in
    Printf.printf "  %-28s seeds [%s]  expected spread %.1f users\n" name
      (String.concat ";" (List.map string_of_int seeds))
      spread;
    spread
  in
  Printf.printf "\nCampaign simulation (k = %d seeds, 2000 cascade samples on ground truth):\n" k;
  let s_celf = eval "CELF on learned strengths" celf_seeds in
  let _ = eval "RIS on learned strengths" ris_seeds in
  let _ = eval "CELF under linear threshold" lt_seeds in
  let s_score = eval "top influence scores" score_seeds in
  let s_deg = eval "top out-degree" degree_seeds in
  let s_rand = eval "random" random_seeds in

  Printf.printf "\nLift of the secure pipeline over baselines: %.2fx vs degree, %.2fx vs random\n"
    (s_celf /. s_deg) (s_celf /. s_rand);
  Printf.printf "Influence scores vs degree heuristic: %.2fx\n" (s_score /. s_deg)
