(* Tests for the serve subsystem: the shared address parser (clean
   errors, never a raw Unix_error), the spe-serve/2 frame codec
   (round-trip + strict rejection, like the inner Frame tests), the
   scheduler's typed admission control, the metrics scrape endpoint,
   and the live-deployment integration paths — daemons in-process over
   a unix-domain roster serving sequential and bursty job loads
   bit-identically to the central Driver oracle with exactly one Hello
   exchange per mesh connection, and the whole-party kill campaign. *)

module Addr = Spe_serve.Addr
module Proto = Spe_serve.Serve_proto
module Scheduler = Spe_serve.Scheduler
module Job = Spe_serve.Job
module Daemon = Spe_serve.Daemon
module Client = Spe_serve.Client
module Transport = Spe_net.Transport
module Schedule = Spe_chaos.Schedule
module Harness = Spe_chaos.Harness
module Driver = Spe_core.Driver
module Protocol4 = Spe_core.Protocol4
module State = Spe_rng.State
module Json = Spe_obs.Obs_io.Json

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* --- Addr ------------------------------------------------------------------ *)

let test_addr_parse () =
  (match Addr.parse "unix:/tmp/spe.sock" with
  | Ok (Transport.Socket.Unix_domain p) -> check Alcotest.string "unix path" "/tmp/spe.sock" p
  | _ -> Alcotest.fail "unix address did not parse");
  (match Addr.parse "127.0.0.1:9000" with
  | Ok (Transport.Socket.Tcp (h, p)) ->
    check Alcotest.string "host" "127.0.0.1" h;
    check Alcotest.int "port" 9000 p
  | _ -> Alcotest.fail "tcp address did not parse");
  (match Addr.parse "localhost:80" with
  | Ok (Transport.Socket.Tcp (h, _)) -> check Alcotest.string "localhost folds" "127.0.0.1" h
  | _ -> Alcotest.fail "localhost did not parse");
  List.iter
    (fun bad ->
      match Addr.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad)
      | Error msg -> checkb (bad ^ " has a message") true (String.length msg > 0))
    [ ""; "no-colon"; "host:"; "host:notaport"; "host:70000"; "host:-1"; "unix:"; "nosuchhostname.invalid:80" ]

let test_addr_party () =
  (match Addr.party_of_string "H" with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "H should be party 0");
  (match Addr.party_of_string "P3" with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "P3 should be party 3");
  List.iter
    (fun bad ->
      match Addr.party_of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad)
      | Error _ -> ())
    [ ""; "P0"; "P"; "Q2"; "H2" ];
  (match Addr.party_of_string "p1" with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "party names are case-insensitive");
  check Alcotest.string "party 0 name" "H" (Addr.party_name 0);
  check Alcotest.string "party 2 name" "P2" (Addr.party_name 2)

let test_addr_roster () =
  let spec = "P2=unix:/tmp/p2.sock,H=127.0.0.1:9000,P1=127.0.0.1:9001" in
  (match Addr.roster_of_string spec with
  | Error msg -> Alcotest.fail msg
  | Ok roster ->
    check Alcotest.int "roster size" 3 (Array.length roster);
    check Alcotest.string "H first" "127.0.0.1:9000" (Addr.to_string roster.(0));
    check Alcotest.string "P2 last" "unix:/tmp/p2.sock" (Addr.to_string roster.(2));
    (* Round-trip through the printer. *)
    match Addr.roster_of_string (Addr.roster_to_string roster) with
    | Ok again -> checkb "round-trips" true (again = roster)
    | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Addr.roster_of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad)
      | Error _ -> ())
    [
      "";
      "H=127.0.0.1:9000";  (* no providers *)
      "H=127.0.0.1:9000,P2=127.0.0.1:9002";  (* gap: P1 missing *)
      "H=127.0.0.1:9000,P1=127.0.0.1:9001,P1=127.0.0.1:9002";  (* duplicate *)
      "P1=127.0.0.1:9001,P2=127.0.0.1:9002";  (* no host *)
      "H=127.0.0.1:9000,P1=nonsense";  (* bad address *)
    ]

(* --- the spe-serve/2 codec -------------------------------------------------- *)

let sample_spec =
  {
    Proto.pipeline = Proto.Links;
    seed = 42;
    shards = 3;
    h = 2;
    c_factor = 2.5;
    modulus_bits = 40;
    tau = 6;
    key_bits = 128;
    pack_slots = 4;
    epoch_ticks = 25;
    window = 6;
    epochs = 5;
    rate = 0.5;
    burstiness = 0.375;
    jitter = 2;
    damping = 0.875;
    iterations = 12;
    fbits = 18;
    rank_degree = true;
  }

let roundtrip frame = Proto.decode (Proto.encode frame)

let test_proto_roundtrip () =
  let frames =
    [
      Proto.Hello { role = Proto.Party 0; version = Proto.version; workload = 0x123456789 };
      Proto.Hello { role = Proto.Client; version = Proto.version; workload = 0 };
      Proto.Session_frame { sid = 65537; body = Bytes.of_string "\x00\x01\xff" };
      Proto.Job_submit { job = 7; spec = sample_spec };
      Proto.Job_submit
        { job = 8; spec = { sample_spec with Proto.pipeline = Proto.Scores } };
      Proto.Job_submit
        { job = 11; spec = { sample_spec with Proto.pipeline = Proto.Stream } };
      Proto.Job_submit
        { job = 13; spec = { sample_spec with Proto.pipeline = Proto.Rank } };
      Proto.Job_result
        {
          job = 13;
          reply = Proto.Rank_summary { ranks_fx = [| 0; 123456; 1 lsl 20 |]; fbits = 20 };
        };
      Proto.Job_result
        { job = 7; reply = Proto.Strengths [ ((0, 1), 0.5); ((3, 2), 0.125) ] };
      Proto.Job_result { job = 9; reply = Proto.Scores [| 1.5; 0.0; nan; 3.25 |] };
      Proto.Job_result
        {
          job = 12;
          reply =
            Proto.Stream_summary
              {
                digests = [| 0x1fff_ffff_ffff_ffff; 0; 42 |];
                recomputed = [| 18; 0; 3 |];
                strengths = [ ((1, 0), 0.25); ((4, 5), 0.75) ];
              };
        };
      Proto.Job_result
        {
          job = 10;
          reply = Proto.Failed { kind = Proto.Peer_down; detail = "P2 died" };
        };
      Proto.Busy { job = 3; queued = 64; max_queue = 64 };
      Proto.Job_cancel { job = 5 };
      Proto.Shutdown;
    ]
  in
  List.iter
    (fun frame ->
      let back = roundtrip frame in
      (* NaN-tolerant structural equality: compare re-encodings, which
         are bit-exact for floats. *)
      checkb "frame round-trips" true (Proto.encode back = Proto.encode frame))
    frames

let test_proto_rejects_malformed () =
  let expect_invalid what bytes =
    match Proto.decode bytes with
    | _ -> Alcotest.fail (what ^ " should have been rejected")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "empty frame" (Bytes.create 0);
  expect_invalid "unknown tag" (Bytes.make 4 '\x00');
  let good = Proto.encode (Proto.Job_cancel { job = 5 }) in
  let trailing = Bytes.extend good 0 1 in
  expect_invalid "trailing bytes" trailing;
  let truncated = Bytes.sub good 0 (Bytes.length good - 1) in
  expect_invalid "truncated frame" truncated;
  (* An inner-protocol frame (tags 0-4) must never decode as a serve
     frame. *)
  expect_invalid "inner frame tag" (Bytes.make 8 '\x02')

(* --- scheduler admission ---------------------------------------------------- *)

let test_scheduler_admission () =
  let s = Scheduler.create ~max_queue:2 ~max_active:1 () in
  checkb "1st accepted" true (Scheduler.submit s 1 = Scheduler.Accepted);
  checkb "2nd accepted" true (Scheduler.submit s 2 = Scheduler.Accepted);
  (match Scheduler.submit s 3 with
  | Scheduler.Busy { queued = 2; max_queue = 2 } -> ()
  | _ -> Alcotest.fail "3rd submit should be Busy {queued=2}");
  check Alcotest.int "depth" 2 (Scheduler.depth s);
  (* A worker claims one; a queue slot frees up. *)
  (match Scheduler.take s with
  | Some 1 -> ()
  | _ -> Alcotest.fail "take should yield the first job");
  check Alcotest.int "active" 1 (Scheduler.active s);
  checkb "refill accepted" true (Scheduler.submit s 4 = Scheduler.Accepted);
  Scheduler.finish s;
  check Alcotest.int "active after finish" 0 (Scheduler.active s);
  let drained = Scheduler.stop s in
  checkb "stop returns the queue in order" true (drained = [ 2; 4 ]);
  checkb "take after stop" true (Scheduler.take s = None);
  (match Scheduler.submit s 5 with
  | Scheduler.Busy _ -> ()
  | _ -> Alcotest.fail "submit after stop should be Busy");
  let st = Scheduler.stats s in
  check Alcotest.int "submitted" 3 st.Scheduler.submitted;
  check Alcotest.int "rejected" 2 st.Scheduler.rejected;
  check Alcotest.int "completed" 1 st.Scheduler.completed

(* --- job validation --------------------------------------------------------- *)

(* The daemon-side twin of the CLI's typed usage errors (the --shards 0
   family): every flag the CLI bounces — zero shards, negative epoch or
   window, out-of-range modulus bits, bad rank parameters — must also
   bounce off Job.validate, so a hand-rolled client cannot smuggle a
   bad spec past the daemons. *)
let test_job_validate () =
  let graph, logs = Util.workload ~seed:31 ~n:10 ~edges:24 ~actions:5 ~m:2 in
  let w = { Job.graph; logs } in
  let ok name spec =
    match Job.validate spec w with
    | Ok () -> ()
    | Error msg -> Alcotest.fail (Printf.sprintf "%s should validate: %s" name msg)
  in
  let bad name spec =
    match Job.validate spec w with
    | Ok () -> Alcotest.fail (Printf.sprintf "%s should be rejected" name)
    | Error msg -> checkb (name ^ " has a detail") true (String.length msg > 0)
  in
  ok "default links" Proto.default_spec;
  (match Job.validate Proto.default_spec { Job.graph; logs = [| logs.(0) |] } with
  | Ok () -> Alcotest.fail "single provider should be rejected"
  | Error _ -> ());
  bad "shards 0" { Proto.default_spec with Proto.shards = 0 };
  bad "shards -3" { Proto.default_spec with Proto.shards = -3 };
  bad "modulus_bits 1" { Proto.default_spec with Proto.modulus_bits = 1 };
  bad "modulus_bits 62" { Proto.default_spec with Proto.modulus_bits = 62 };
  bad "links h 0" { Proto.default_spec with Proto.h = 0 };
  bad "links c_factor 0.5" { Proto.default_spec with Proto.c_factor = 0.5 };
  let scores = { Proto.default_spec with Proto.pipeline = Proto.Scores } in
  ok "default scores" scores;
  bad "scores tau 0" { scores with Proto.tau = 0 };
  bad "scores key_bits 8" { scores with Proto.key_bits = 8 };
  bad "scores pack_slots 0" { scores with Proto.pack_slots = 0 };
  let stream =
    {
      Proto.default_spec with
      Proto.pipeline = Proto.Stream;
      epoch_ticks = 25;
      epochs = 3;
      rate = 0.6;
    }
  in
  ok "valid stream" stream;
  bad "stream epoch_ticks 0" { stream with Proto.epoch_ticks = 0 };
  bad "stream epoch_ticks -1" { stream with Proto.epoch_ticks = -1 };
  bad "stream window -1" { stream with Proto.window = -1 };
  bad "stream epochs 0" { stream with Proto.epochs = 0 };
  bad "stream rate 0" { stream with Proto.rate = 0. };
  bad "stream burstiness 1" { stream with Proto.burstiness = 1. };
  bad "stream jitter -2" { stream with Proto.jitter = -2 };
  let rank = { Proto.default_spec with Proto.pipeline = Proto.Rank } in
  ok "default rank" rank;
  bad "rank damping 1" { rank with Proto.damping = 1. };
  bad "rank damping -0.1" { rank with Proto.damping = -0.1 };
  bad "rank iterations -1" { rank with Proto.iterations = -1 };
  bad "rank fbits 3" { rank with Proto.fbits = 3 };
  bad "rank fbits 31" { rank with Proto.fbits = 31 };
  bad "rank fbits = modulus_bits" { rank with Proto.fbits = 20; modulus_bits = 20 }

(* --- live deployments ------------------------------------------------------- *)

(* A small links workload: 3 providers like the chaos campaigns, so the
   mesh is a real 4-daemon clique (shared with test_rank via Util). *)
let links_workload = Util.links_workload

let links_spec ~pseed ~shards =
  {
    Proto.default_spec with
    Proto.pipeline = Proto.Links;
    seed = pseed;
    shards;
    h = 2;
    c_factor = 2.;
    modulus_bits = 40;
  }

let links_oracle ~pseed ~graph ~logs =
  let r =
    Driver.link_strengths_exclusive (State.create ~seed:pseed ()) ~graph ~logs
      (Protocol4.default_config ~h:2)
  in
  r.Driver.strengths

(* Start one in-process daemon per party over a temp unix-domain
   roster, run [f client daemons roster], then shut everything down
   (shared with test_rank via Util). *)
let with_deployment = Util.with_deployment
let gauge = Util.gauge

(* Satellite: N >= 3 sequential sharded sessions over one connection
   set, bit-identical to the central Driver oracle, with exactly one
   Hello exchange per mesh connection in the accounting. *)
let test_daemon_sequential_jobs () =
  with_deployment (fun client daemons _roster ~graph ~logs ->
      let m = Array.length logs in
      let pseed = links_workload.Schedule.wseed + 1 in
      let expected = Proto.Strengths (links_oracle ~pseed ~graph ~logs) in
      for _round = 1 to 3 do
        match
          Client.run_jobs client
            [ links_spec ~pseed ~shards:2 ]
            ~deadline:(Unix.gettimeofday () +. 60.)
        with
        | [ Client.Result reply ] ->
          checkb "bit-identical to the central oracle" true (reply = expected)
        | _ -> Alcotest.fail "job did not complete"
      done;
      (* One Hello exchange per mesh connection, none per job: every
         daemon received exactly one Hello from each of its m peers
         (client hellos are counted separately), no matter how many
         sessions multiplexed over the mesh. *)
      for party = 0 to m do
        check Alcotest.int
          (Printf.sprintf "daemon %s hellos" (Addr.party_name party))
          m
          (gauge daemons party "hellos_received")
      done;
      checkb "H ran sessions" true (gauge daemons 0 "sessions_run" > 0);
      check Alcotest.int "H completed all jobs" 3 (gauge daemons 0 "jobs_completed"))

(* Acceptance: a 50-job concurrent burst under admission control, every
   reply bit-identical. *)
let test_daemon_burst_50 () =
  let workload = { Schedule.wseed = 11; users = 12; edges = 30; actions = 6; providers = 2 } in
  with_deployment ~workload ~max_sessions:4 ~max_queue:64
    (fun client daemons _roster ~graph ~logs ->
      let pseed = workload.Schedule.wseed + 1 in
      let expected = Proto.Strengths (links_oracle ~pseed ~graph ~logs) in
      let jobs = 50 in
      let outcomes =
        Client.run_jobs client
          (List.init jobs (fun _ -> links_spec ~pseed ~shards:2))
          ~deadline:(Unix.gettimeofday () +. 120.)
      in
      check Alcotest.int "all jobs answered" jobs (List.length outcomes);
      List.iteri
        (fun i outcome ->
          match outcome with
          | Client.Result reply ->
            checkb (Printf.sprintf "job %d bit-identical" i) true (reply = expected)
          | Client.Busy _ -> Alcotest.fail (Printf.sprintf "job %d refused from a 64-slot queue" i))
        outcomes;
      check Alcotest.int "H completed all" jobs (gauge daemons 0 "jobs_completed");
      checkb "admission never tripped" true (gauge daemons 0 "busy_rejected" = 0))

(* Backpressure: a tiny queue must refuse part of a burst with the
   typed Busy reply, and what it does admit still completes correctly. *)
let test_daemon_busy_backpressure () =
  let workload = { Schedule.wseed = 11; users = 12; edges = 30; actions = 6; providers = 2 } in
  with_deployment ~workload ~max_sessions:1 ~max_queue:1
    (fun client daemons _roster ~graph ~logs ->
      let pseed = workload.Schedule.wseed + 1 in
      let expected = Proto.Strengths (links_oracle ~pseed ~graph ~logs) in
      let jobs = 8 in
      let outcomes =
        Client.run_jobs client
          (List.init jobs (fun _ -> links_spec ~pseed ~shards:2))
          ~deadline:(Unix.gettimeofday () +. 120.)
      in
      let busy, completed =
        List.partition (function Client.Busy _ -> true | _ -> false) outcomes
      in
      checkb "some jobs were refused" true (busy <> []);
      checkb "some jobs completed" true (completed <> []);
      List.iter
        (function
          | Client.Result reply ->
            checkb "admitted jobs still bit-identical" true (reply = expected)
          | Client.Busy { queued; max_queue } ->
            check Alcotest.int "busy names the bound" 1 max_queue;
            checkb "busy names the depth" true (queued >= 0))
        outcomes;
      let st = gauge daemons 0 "busy_rejected" in
      check Alcotest.int "every refusal counted" (List.length busy) st)

(* The scrape endpoint: live gauges + cumulative report, over both the
   raw and the HTTP framing. *)
let test_daemon_scrape () =
  let dir = Filename.temp_file "spe-scrape" "" in
  Unix.unlink dir;
  let maddr = Transport.Socket.Unix_domain dir in
  with_deployment ~metrics_addr:maddr (fun client _daemons _roster ~graph ~logs ->
      let pseed = links_workload.Schedule.wseed + 1 in
      let expected = Proto.Strengths (links_oracle ~pseed ~graph ~logs) in
      (match
         Client.run_jobs client
           [ links_spec ~pseed ~shards:2 ]
           ~deadline:(Unix.gettimeofday () +. 60.)
       with
      | [ Client.Result reply ] -> checkb "job ok" true (reply = expected)
      | _ -> Alcotest.fail "job did not complete");
      let doc = Client.scrape maddr in
      let json = Json.of_string doc in
      (match Json.member "version" json with
      | Json.String "spe-serve-metrics/1" -> ()
      | _ -> Alcotest.fail "scrape document version");
      (match Json.member "party" json with
      | Json.String "H" -> ()
      | _ -> Alcotest.fail "scrape document party");
      (match Json.member "gauges" json with
      | Json.Obj gauges ->
        List.iter
          (fun key ->
            match List.assoc_opt key gauges with
            | Some (Json.Int _) -> ()
            | _ -> Alcotest.fail (Printf.sprintf "gauge %s missing from scrape" key))
          [
            "queue_depth"; "active_jobs"; "active_sessions"; "jobs_submitted";
            "jobs_completed"; "busy_rejected"; "hellos_sent"; "hellos_received";
            "reactor_iterations"; "reactor_timer_fires"; "reactor_ready_depth";
            "reactor_pending_timers";
          ];
        (match List.assoc_opt "jobs_completed" gauges with
        | Some (Json.Int n) -> checkb "completed gauge counts" true (n >= 1)
        | _ -> Alcotest.fail "jobs_completed gauge");
        (* The daemon ran a whole job on its loop thread by now, so the
           reactor liveness gauges must be moving. *)
        (match List.assoc_opt "reactor_iterations" gauges with
        | Some (Json.Int n) -> checkb "reactor loop iterated" true (n > 0)
        | _ -> Alcotest.fail "reactor_iterations gauge")
      | _ -> Alcotest.fail "scrape gauges object");
      (* Tracing was on, so the cumulative spe-metrics/2 report is
         attached. *)
      (match Json.member "report" json with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "scrape report should be a merged spe-metrics/2 document");
      (* The same endpoint speaks HTTP when asked with a GET line. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Addr.sockaddr maddr);
      let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write fd req 0 (Bytes.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Unix.close fd;
      let http = Buffer.contents buf in
      checkb "HTTP status line" true
        (String.length http > 15 && String.sub http 0 15 = "HTTP/1.0 200 OK");
      checkb "HTTP body carries the document" true
        (let marker = "spe-serve-metrics/1" in
         let rec find i =
           if i + String.length marker > String.length http then false
           else String.sub http i (String.length marker) = marker || find (i + 1)
         in
         find 0))

(* Satellite: --pack-slots travels in the job spec now (PR 8's daemons
   refused it), and a packed scores job over the mesh stays
   bit-identical to the central oracle with the same packing. *)
let test_daemon_scores_pack_slots () =
  with_deployment (fun client _daemons _roster ~graph ~logs ->
      let pseed = links_workload.Schedule.wseed + 3 in
      let module Protocol6 = Spe_core.Protocol6 in
      let config =
        { Protocol6.default_config with Protocol6.key_bits = 128; pack_slots = 4 }
      in
      let r =
        Driver.user_scores_exclusive (State.create ~seed:pseed ()) ~graph ~logs ~tau:2
          ~modulus:(1 lsl 20) config
      in
      let expected = Proto.Scores r.Driver.scores in
      let spec =
        {
          Proto.default_spec with
          Proto.pipeline = Proto.Scores;
          seed = pseed;
          shards = 2;
          modulus_bits = 20;
          tau = 2;
          key_bits = 128;
          pack_slots = 4;
        }
      in
      match Client.run_jobs client [ spec ] ~deadline:(Unix.gettimeofday () +. 120.) with
      | [ Client.Result reply ] ->
        checkb "packed scores job bit-identical to the central oracle" true
          (reply = expected)
      | _ -> Alcotest.fail "packed scores job did not complete")

(* Tentpole: a stream job over the mesh.  Every daemon replays the
   identical seeded ingestion and runs the concatenated epoch-delta
   stages; the reply must be bit-identical to building and running the
   same plan locally, and the per-epoch gauges must advance. *)
let test_daemon_stream_job () =
  with_deployment (fun client daemons _roster ~graph ~logs ->
      let module Plan = Spe_core.Plan in
      let pseed = links_workload.Schedule.wseed + 5 in
      let epochs = 4 in
      let spec =
        {
          Proto.default_spec with
          Proto.pipeline = Proto.Stream;
          seed = pseed;
          h = 2;
          c_factor = 2.;
          modulus_bits = 40;
          epoch_ticks = 25;
          window = 6;
          epochs;
          rate = 0.5;
          burstiness = 0.4;
          jitter = 2;
        }
      in
      (* The local oracle: the identical plan the daemons rebuild, run
         on the in-process memory engine (delta releases are
         engine-independent — pinned by the spe_delta suite). *)
      let expected =
        let planned = Job.build spec { Job.graph; logs } in
        List.iter
          (fun (stage : Plan.stage) ->
            ignore (Spe_net.Endpoint.run_sessions_memory ~workers:2 stage.Plan.sessions))
          (Job.stages planned);
        Job.reply_of planned
      in
      (match expected with
      | Proto.Stream_summary { digests; recomputed; strengths } ->
        check Alcotest.int "oracle released every epoch" epochs (Array.length digests);
        checkb "first epoch recomputed something" true (recomputed.(0) > 0);
        checkb "final strengths non-empty" true (strengths <> [])
      | _ -> Alcotest.fail "stream oracle reply shape");
      (match Client.run_jobs client [ spec ] ~deadline:(Unix.gettimeofday () +. 120.) with
      | [ Client.Result reply ] ->
        checkb "stream job bit-identical to the local plan" true (reply = expected)
      | _ -> Alcotest.fail "stream job did not complete");
      (* Per-epoch gauges: every daemon walks every stage, so H saw all
         the releases. *)
      check Alcotest.int "H released every epoch" epochs (gauge daemons 0 "epochs_released");
      check Alcotest.int "H tracked the last epoch" (epochs - 1) (gauge daemons 0 "last_epoch");
      checkb "H ran epoch recompute sessions" true (gauge daemons 0 "epoch_sessions_run" > 0))

(* Whole-party chaos: SIGKILL one provider daemon mid-burst; every
   client reply stays typed, survivors match the oracle, the host keeps
   serving, and every forked daemon is reaped. *)
let test_daemon_kill_campaign () =
  match Spe_chaos.Daemon_fault.run ~jobs:3 ~seed:1 Schedule.Links with
  | Harness.Pass -> ()
  | Harness.Fail { oracle; detail } ->
    Alcotest.fail (Printf.sprintf "%s violation: %s" oracle detail)

let () =
  Alcotest.run "serve"
    [
      ( "addr",
        [
          Alcotest.test_case "parses tcp and unix addresses" `Quick test_addr_parse;
          Alcotest.test_case "parses party names" `Quick test_addr_party;
          Alcotest.test_case "parses rosters" `Quick test_addr_roster;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "frames round-trip" `Quick test_proto_roundtrip;
          Alcotest.test_case "rejects malformed frames" `Quick
            test_proto_rejects_malformed;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "typed admission control" `Quick test_scheduler_admission ] );
      ( "job",
        [ Alcotest.test_case "spec validation rejects bad flags" `Quick test_job_validate ] );
      ( "deployment",
        [
          Alcotest.test_case "sequential jobs, one hello per peer" `Slow
            test_daemon_sequential_jobs;
          Alcotest.test_case "50-job burst bit-identical" `Slow test_daemon_burst_50;
          Alcotest.test_case "busy backpressure" `Slow test_daemon_busy_backpressure;
          Alcotest.test_case "metrics scrape" `Slow test_daemon_scrape;
          Alcotest.test_case "packed scores job" `Slow test_daemon_scores_pack_slots;
          Alcotest.test_case "stream job bit-identical" `Slow test_daemon_stream_job;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "daemon kill stays typed" `Slow test_daemon_kill_campaign;
        ] );
    ]
