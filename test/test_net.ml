(* Tests for the transport subsystem: frame encode/decode, the memory
   and socket transports, the Endpoint round loop (including the
   Runtime.run edge-case contract), equality of protocol results and
   wire statistics across engines, the byte-exact framing-overhead
   accounting, and the fault-injection / timeout paths. *)

module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Protocol1 = Spe_mpc.Protocol1
module Protocol2 = Spe_mpc.Protocol2
module Protocol3 = Spe_mpc.Protocol3
module P1d = Spe_mpc.Protocol1_distributed
module P2d = Spe_mpc.Protocol2_distributed
module P3d = Spe_mpc.Protocol3_distributed
module Nat = Spe_bignum.Nat
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module Driver_distributed = Spe_core.Driver_distributed
module Frame = Spe_net.Frame
module Fault = Spe_net.Fault
module Transport = Spe_net.Transport
module Endpoint = Spe_net.Endpoint
module Net_wire = Spe_net.Net_wire
module Reactor = Spe_net.Reactor

let providers m = Array.init m (fun k -> Wire.Provider k)

(* Fast timeouts so the fault tests finish in well under a second. *)
let fast = { Endpoint.round_timeout = 0.08; max_retries = 3; linger = 0.5 }

(* --- frames ----------------------------------------------------------------- *)

let roundtrip frame =
  let body = Frame.encode frame in
  let decoded = Frame.decode body in
  if decoded <> frame then Alcotest.fail "frame round trip failed";
  (* The closed-form size is exact, and encode_into at an offset
     produces the same bytes encode does. *)
  Alcotest.(check int) "encoded_length closed form"
    (Bytes.length body) (Frame.encoded_length frame);
  let off = 7 in
  let buf = Bytes.make (off + Bytes.length body + 3) '\xAA' in
  let stop = Frame.encode_into frame buf ~pos:off in
  Alcotest.(check int) "encode_into end position" (off + Bytes.length body) stop;
  if not (Bytes.equal body (Bytes.sub buf off (Bytes.length body))) then
    Alcotest.fail "encode_into disagrees with encode"

let test_frame_roundtrips () =
  roundtrip (Frame.Hello { sender = 3 });
  roundtrip
    (Frame.Data
       { round = 7; seq = 2; src = Wire.Host; dst = Wire.Provider 4;
         payload = Runtime.Ints { modulus = 1 lsl 40; values = [| 0; 5; (1 lsl 40) - 1 |] } });
  roundtrip
    (Frame.Data
       { round = 1; seq = 0; src = Wire.Provider 0; dst = Wire.Provider 1;
         payload = Runtime.Floats [| 0.; -1.5; Float.pi |] });
  roundtrip
    (Frame.Data
       { round = 2; seq = 9; src = Wire.Provider 1; dst = Wire.Host;
         payload = Runtime.Bits [| true; false; true; true; false; true; false; true; true |] });
  roundtrip
    (Frame.Data
       { round = 3; seq = 1; src = Wire.Provider 2; dst = Wire.Host;
         payload =
           Runtime.Nats
             { width_bits = 64;
               values = [| Nat.zero; Nat.of_int 123456789; Nat.of_int max_int |] } });
  roundtrip
    (Frame.Data
       { round = 5; seq = 3; src = Wire.Host; dst = Wire.Provider 0;
         payload =
           Runtime.Tuples
             { moduli = [| 8; 300; 17 |]; rows = [| [| 1; 2; 3 |]; [| 7; 299; 16 |] |] } });
  roundtrip
    (Frame.Data
       { round = 6; seq = 0; src = Wire.Provider 1; dst = Wire.Provider 0;
         payload =
           Runtime.Batch
             [ Runtime.Ints { modulus = 1 lsl 12; values = [| 1; 4095 |] };
               Runtime.Nats { width_bits = 16; values = [| Nat.of_int 65535 |] };
               Runtime.Tuples { moduli = [| 4; 4 |]; rows = [| [| 3; 0 |] |] } ] });
  roundtrip (Frame.End_of_round { round = 4; sender = 1; total = 6; to_dst = 2 });
  roundtrip (Frame.Nack { round = 4; sender = 0 });
  roundtrip (Frame.Fin { sender = 2 })

let test_frame_rejects_garbage () =
  Alcotest.check_raises "unknown tag" (Invalid_argument "Frame.decode: unknown tag 200")
    (fun () -> ignore (Frame.decode (Bytes.make 1 '\200')));
  Alcotest.check_raises "truncated" (Invalid_argument "Frame.decode: truncated frame")
    (fun () -> ignore (Frame.decode (Bytes.sub (Frame.encode (Frame.Nack { round = 1; sender = 0 })) 0 3)));
  let full = Frame.encode (Frame.Fin { sender = 1 }) in
  let padded = Bytes.extend full 0 2 in
  Alcotest.check_raises "trailing bytes" (Invalid_argument "Frame.decode: trailing bytes")
    (fun () -> ignore (Frame.decode padded))

let test_frame_payload_length_matches_runtime () =
  let payloads =
    [ Runtime.Ints { modulus = 1 lsl 20; values = [| 1; 2; 3 |] };
      Runtime.Floats [| 1.; 2. |]; Runtime.Bits (Array.make 11 true);
      Runtime.Nats { width_bits = 48; values = [| Nat.of_int 5; Nat.of_int 1000000 |] };
      Runtime.Tuples { moduli = [| 30; 12; 64 |]; rows = [| [| 29; 0; 63 |]; [| 1; 11; 7 |] |] };
      Runtime.Batch
        [ Runtime.Floats [| 0.5 |];
          Runtime.Nats { width_bits = 8; values = [| Nat.of_int 255 |] } ] ]
  in
  List.iter
    (fun payload ->
      let frame =
        Frame.Data { round = 1; seq = 0; src = Wire.Host; dst = Wire.Provider 0; payload }
      in
      Alcotest.(check int) "payload bytes as charged on the simulated wire"
        (Runtime.payload_bits payload / 8)
        (Frame.payload_length frame);
      Alcotest.(check bool) "framing overhead is positive" true
        (Frame.framed_length frame > Frame.payload_length frame))
    payloads

let test_frame_encode_into_zero_alloc () =
  (* The transport hot path: encoding an integer-payload frame into a
     reused buffer must allocate nothing on the minor heap.  Floats /
     Nats payloads box values and are excluded from the guarantee. *)
  let frame =
    Frame.Data
      { round = 12; seq = 3; src = Wire.Provider 1; dst = Wire.Host;
        payload = Runtime.Ints { modulus = 1 lsl 40; values = Array.init 64 (fun i -> i) } }
  in
  let measure frame buf =
    (* Warm up: fault any lazy paths before measuring. *)
    ignore (Frame.encode_into frame buf ~pos:0);
    let iters = 1000 in
    let before = Gc.minor_words () in
    for _ = 1 to iters do
      ignore (Frame.encode_into frame buf ~pos:0)
    done;
    let allocated = Gc.minor_words () -. before in
    (* Sampling the counter boxes a couple of floats; anything beyond
       that constant means encode_into allocates per frame. *)
    if allocated > 64.0 then
      Alcotest.failf "encode_into allocated %.0f minor words over %d frames" allocated
        iters
  in
  measure frame (Bytes.create (Frame.encoded_length frame));
  (* Control frames ride the same writer. *)
  let eor = Frame.End_of_round { round = 3; sender = 1; total = 9; to_dst = 4 } in
  measure eor (Bytes.create (Frame.encoded_length eor))

let qcheck_frame_tests =
  let open QCheck in
  let payload_gen =
    Gen.oneof
      [
        Gen.map2
          (fun bits values ->
            let modulus = 1 lsl (2 + bits) in
            Runtime.Ints
              { modulus; values = Array.of_list (List.map (fun v -> v mod modulus) values) })
          (Gen.int_range 0 40)
          (Gen.list_size (Gen.int_range 0 20) (Gen.int_range 0 max_int));
        Gen.map (fun l -> Runtime.Floats (Array.of_list l))
          (Gen.list_size (Gen.int_range 0 20) Gen.float);
        Gen.map (fun l -> Runtime.Bits (Array.of_list l))
          (Gen.list_size (Gen.int_range 0 40) Gen.bool);
      ]
  in
  let frame_gen =
    Gen.oneof
      [
        Gen.map (fun s -> Frame.Hello { sender = s }) (Gen.int_range 0 100);
        Gen.map3
          (fun round seq payload ->
            Frame.Data
              { round; seq; src = Wire.Provider 0; dst = Wire.Host; payload })
          (Gen.int_range 1 1000) (Gen.int_range 0 1000) payload_gen;
        Gen.map3
          (fun round sender (total, to_dst) ->
            Frame.End_of_round { round; sender; total; to_dst })
          (Gen.int_range 1 1000) (Gen.int_range 0 100)
          (Gen.pair (Gen.int_range 0 1000) (Gen.int_range 0 1000));
        Gen.map2 (fun round sender -> Frame.Nack { round; sender })
          (Gen.int_range 1 1000) (Gen.int_range 0 100);
        Gen.map (fun s -> Frame.Fin { sender = s }) (Gen.int_range 0 100);
      ]
  in
  [
    Test.make ~name:"length-prefixed frame encode/decode round-trips" ~count:500
      (make frame_gen)
      (fun frame ->
        let body = Frame.encode frame in
        Frame.decode body = frame
        && Frame.framed_length frame = Frame.length_prefix_bytes + Bytes.length body);
  ]

(* --- the reactor's determinism contract -------------------------------------- *)

(* The reactor promises (reactor.mli): due timers fire strictly in
   (deadline, registration) order, cancelled timers never fire, the
   ready queue is drained FIFO in snapshots, and a task posted by a
   running task waits for the {e next} snapshot — behind every queued
   sibling, which is the fairness point machines rely on between
   rounds.  The property builds a seeded batch of already-due timers
   (with deadline collisions), cancellations and chained posts, runs
   it twice, and checks both runs against the analytically expected
   order. *)
let qcheck_reactor_tests =
  let open QCheck in
  let batch_gen =
    Gen.triple
      (Gen.list_size (Gen.int_range 0 24) (Gen.int_range 0 4)) (* timer deadline offsets *)
      (Gen.list_size (Gen.int_range 0 24) Gen.bool) (* cancellation mask *)
      (Gen.int_range 0 12) (* chained post pairs *)
  in
  let run_batch (offsets, cancels, nposts) =
    let r = Reactor.create () in
    let order = ref [] in
    let record e = order := e :: !order in
    let now = Unix.gettimeofday () in
    (* Already-due deadlines (now - 1 - offset): wall-clock independent
       — every timer is due at the first iteration, so the fire order
       is purely the heap's (deadline, seq) contract. *)
    let timers =
      List.mapi
        (fun i off ->
          (i, off, Reactor.at r (now -. 1. -. float_of_int off) (fun () -> record (`Timer i))))
        offsets
    in
    let cancelled =
      List.filteri (fun i _ -> List.nth_opt cancels i = Some true) timers
      |> List.map (fun (i, _, tm) -> Reactor.cancel r tm; i)
    in
    for j = 0 to nposts - 1 do
      (* Each parent posts a child when it runs: the child must land in
         the next snapshot, after every queued parent. *)
      Reactor.post r (fun () ->
          record (`Parent j);
          Reactor.post r (fun () -> record (`Child j)))
    done;
    let live = List.length offsets - List.length cancelled in
    let target = live + (2 * nposts) in
    Reactor.run r ~until:(fun () -> List.length !order >= target);
    let fired = Reactor.timer_fires r in
    Reactor.destroy r;
    (List.rev !order, fired, live)
  in
  let expected_of (offsets, cancels, nposts) =
    let live =
      List.filteri (fun i _ -> List.nth_opt cancels i <> Some true)
        (List.mapi (fun i off -> (i, off)) offsets)
    in
    (* Heap order: smaller deadline first (= larger offset), ties by
       registration sequence. *)
    let timers =
      List.stable_sort (fun (_, o1) (_, o2) -> compare o2 o1) live
      |> List.map (fun (i, _) -> `Timer i)
    in
    timers
    @ List.init nposts (fun j -> `Parent j)
    @ List.init nposts (fun j -> `Child j)
  in
  [
    Test.make ~name:"reactor: timer order, cancellation and ready-FIFO are deterministic"
      ~count:200 (make batch_gen)
      (fun batch ->
        let a, fired_a, live = run_batch batch in
        let b, fired_b, _ = run_batch batch in
        let expected = expected_of batch in
        a = expected && b = expected && fired_a = live && fired_b = live);
  ]

(* --- transports ------------------------------------------------------------- *)

let test_memory_transport_delivers () =
  let group = Transport.Memory.create_group ~m:2 () in
  let a = group.(0) and b = group.(1) in
  a.Transport.send 1 (Bytes.of_string "one");
  a.Transport.send 1 (Bytes.of_string "two");
  let deadline = Unix.gettimeofday () +. 1. in
  Alcotest.(check (option string)) "fifo 1" (Some "one")
    (Option.map Bytes.to_string (b.Transport.recv ~deadline));
  Alcotest.(check (option string)) "fifo 2" (Some "two")
    (Option.map Bytes.to_string (b.Transport.recv ~deadline));
  Alcotest.(check (option string)) "empty queue times out" None
    (Option.map Bytes.to_string (b.Transport.recv ~deadline:(Unix.gettimeofday () +. 0.01)));
  Alcotest.(check int) "framed bytes counted" (2 * (Frame.length_prefix_bytes + 3))
    (a.Transport.sent_bytes ());
  a.Transport.close ();
  Alcotest.check_raises "send after close" Transport.Closed (fun () ->
      b.Transport.send 0 (Bytes.of_string "x"));
  Alcotest.check_raises "recv after close" Transport.Closed (fun () ->
      ignore (a.Transport.recv ~deadline))

let test_socket_transport_delivers () =
  let group =
    Transport.Socket.create_group ~addresses:(Transport.Socket.temp_unix_addresses ~m:3) ()
  in
  let deadline = Unix.gettimeofday () +. 2. in
  group.(2).Transport.send 0 (Bytes.of_string "hello-from-2");
  group.(0).Transport.send 2 (Bytes.of_string "hello-from-0");
  Alcotest.(check (option string)) "2 -> 0" (Some "hello-from-2")
    (Option.map Bytes.to_string (group.(0).Transport.recv ~deadline));
  Alcotest.(check (option string)) "0 -> 2" (Some "hello-from-0")
    (Option.map Bytes.to_string (group.(2).Transport.recv ~deadline));
  group.(0).Transport.close ()

(* --- the Endpoint engine contract (Runtime.run edge cases) -------------------- *)

(* A one-shot program: sends its floats to the next party in round 1,
   then goes quiet.  Exercises quiescence exactly like Runtime.run. *)
let one_shot_programs parties =
  let m = Array.length parties in
  Array.init m (fun k ->
      fun ~round ~inbox:_ ->
        if round = 1 then
          [ { Runtime.src = parties.(k); dst = parties.((k + 1) mod m);
              payload = Runtime.Floats [| float_of_int k |] } ]
        else [])

let test_endpoint_quiescent_round_not_charged () =
  let parties = providers 3 in
  let res =
    Endpoint.run_memory ~config:fast ~parties ~programs:(one_shot_programs parties)
      ~max_rounds:5 ()
  in
  Array.iter
    (fun (o : Endpoint.outcome) ->
      Alcotest.(check int) "one active round" 1 o.Endpoint.rounds)
    res.Endpoint.outcomes;
  let merged =
    Net_wire.merge (Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes)
  in
  let s = Wire.stats merged in
  Alcotest.(check int) "merged wire: 1 round" 1 s.Wire.rounds;
  Alcotest.(check int) "merged wire: 3 messages" 3 s.Wire.messages;
  (* The in-process engine agrees, message for message. *)
  let engine = Runtime.create () in
  let programs = one_shot_programs parties in
  Array.iteri (fun k p -> Runtime.add_party engine p programs.(k)) parties;
  let w = Wire.create () in
  let rounds = Runtime.run engine ~wire:w ~max_rounds:5 in
  Alcotest.(check int) "engine rounds agree" rounds 1;
  Alcotest.(check bool) "engine stats agree" true (Wire.stats w = s)

let test_endpoint_nontermination_detected () =
  let parties = [| Wire.Host; Wire.Provider 0 |] in
  let programs =
    Array.init 2 (fun k ->
        fun ~round:_ ~inbox:_ ->
          [ { Runtime.src = parties.(k); dst = parties.(1 - k);
              payload = Runtime.Bits [| true |] } ])
  in
  Alcotest.check_raises "runaway protocol"
    (Failure "Endpoint.run: protocol did not terminate") (fun () ->
      ignore (Endpoint.run_memory ~config:fast ~parties ~programs ~max_rounds:3 ()))

let test_endpoint_rejects_unknown_destination () =
  let parties = [| Wire.Host; Wire.Provider 0 |] in
  let programs =
    [|
      (fun ~round:_ ~inbox:_ ->
        [ { Runtime.src = Wire.Host; dst = Wire.Provider 9;
            payload = Runtime.Bits [| true |] } ]);
      (fun ~round:_ ~inbox:_ -> []);
    |]
  in
  Alcotest.check_raises "unknown party"
    (Invalid_argument "Endpoint.run: message to unknown party") (fun () ->
      ignore (Endpoint.run_memory ~config:fast ~parties ~programs ~max_rounds:3 ()))

let test_endpoint_rejects_forged_source () =
  let parties = [| Wire.Host; Wire.Provider 0 |] in
  let programs =
    [|
      (fun ~round:_ ~inbox:_ ->
        [ { Runtime.src = Wire.Provider 0; dst = Wire.Host;
            payload = Runtime.Bits [| true |] } ]);
      (fun ~round:_ ~inbox:_ -> []);
    |]
  in
  Alcotest.check_raises "forged source" (Invalid_argument "Endpoint.run: forged source")
    (fun () -> ignore (Endpoint.run_memory ~config:fast ~parties ~programs ~max_rounds:3 ()))

(* --- protocol equality across engines ----------------------------------------- *)

let p1_reference ~seed ~parties ~modulus ~inputs =
  let s = State.create ~seed () in
  let w = Wire.create () in
  let r = P1d.run s ~wire:w ~parties ~modulus ~inputs in
  (r, Wire.stats w)

let run_p1_over engine ~seed ~parties ~modulus ~inputs =
  let s = State.create ~seed () in
  let session = P1d.make s ~parties ~modulus ~inputs in
  let res =
    engine ~parties:session.Session.parties ~programs:session.Session.programs
      ~max_rounds:P1d.max_rounds ()
  in
  (session.Session.result (), res)

let logs_of (res : Endpoint.result) =
  Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes

let check_p1_engine engine label =
  List.iter
    (fun m ->
      let parties = providers m in
      let modulus = 1 lsl 30 in
      let inputs = Array.init m (fun k -> Array.init 5 (fun l -> (k * 17) + l)) in
      let reference, sim_stats = p1_reference ~seed:11 ~parties ~modulus ~inputs in
      let result, res = run_p1_over engine ~seed:11 ~parties ~modulus ~inputs in
      Alcotest.(check bool)
        (Printf.sprintf "%s m=%d share1" label m)
        true
        (result.Protocol1.share1 = reference.Protocol1.share1);
      Alcotest.(check bool)
        (Printf.sprintf "%s m=%d share2" label m)
        true
        (result.Protocol1.share2 = reference.Protocol1.share2);
      let merged_stats = Wire.stats (Net_wire.merge (logs_of res)) in
      Alcotest.(check bool)
        (Printf.sprintf "%s m=%d NR/NM/MS identical to the simulated wire" label m)
        true (merged_stats = sim_stats))
    [ 2; 3; 4 ]

let mem_engine ?config ?fault () ~parties ~programs ~max_rounds () =
  Endpoint.run_memory ?config ?fault ~parties ~programs ~max_rounds ()

let sock_engine ~parties ~programs ~max_rounds () =
  Endpoint.run_socket ~parties ~programs ~max_rounds ()

let test_p1_memory_matches_sim () = check_p1_engine (mem_engine ()) "memory"

let test_p1_socket_matches_sim () = check_p1_engine sock_engine "socket"

let check_p2_engine engine label =
  List.iter
    (fun m ->
      let parties = providers m in
      let modulus = 1 lsl 14 and bound = 1000 in
      let inputs = Array.init m (fun k -> Array.init 4 (fun l -> (k * 31 + l) mod (bound / m))) in
      let s = State.create ~seed:23 () in
      let w = Wire.create () in
      let reference =
        P2d.run s ~wire:w ~parties ~third_party:Wire.Host ~modulus ~input_bound:bound ~inputs
      in
      let s = State.create ~seed:23 () in
      let session =
        P2d.make s ~parties ~third_party:Wire.Host ~modulus ~input_bound:bound ~inputs
      in
      let res =
        engine ~parties:session.Session.parties ~programs:session.Session.programs
          ~max_rounds:P2d.max_rounds ()
      in
      let result = session.Session.result () in
      Alcotest.(check bool) (Printf.sprintf "%s m=%d share1" label m) true
        (result.Protocol2.share1 = reference.P2d.share1);
      Alcotest.(check bool) (Printf.sprintf "%s m=%d share2" label m) true
        (result.Protocol2.share2 = reference.P2d.share2);
      let merged_stats = Wire.stats (Net_wire.merge (logs_of res)) in
      Alcotest.(check bool)
        (Printf.sprintf "%s m=%d NR/NM/MS identical to the simulated wire" label m)
        true
        (merged_stats = Wire.stats w))
    [ 2; 3; 5 ]

let test_p2_memory_matches_sim () = check_p2_engine (mem_engine ()) "memory"

let test_p2_socket_matches_sim () = check_p2_engine sock_engine "socket"

(* Protocol 3: the quotient and the full NR/NM/MS triple are identical
   across the central run, the in-process session, and both transport
   engines — the distributed twin charges the same two Floats sends. *)
let test_p3_cross_engine () =
  let p1 = Wire.Provider 0 and p2 = Wire.Provider 1 and host = Wire.Host in
  List.iter
    (fun (a1, a2) ->
      let label = Printf.sprintf "p3 a1=%d a2=%d" a1 a2 in
      let central_q, central_stats =
        let s = State.create ~seed:71 () in
        let w = Wire.create () in
        let o = Protocol3.run s ~wire:w ~p1 ~p2 ~host ~a1 ~a2 in
        (o.Protocol3.quotient, Wire.stats w)
      in
      let session () = P3d.make (State.create ~seed:71 ()) ~p1 ~p2 ~host ~a1 ~a2 in
      let w = Wire.create () in
      let sim_q = Session.run (session ()) ~wire:w in
      Alcotest.(check bool) (label ^ ": sim quotient bit-identical") true (sim_q = central_q);
      Alcotest.(check bool) (label ^ ": sim NR/NM/MS identical to the central wire") true
        (Wire.stats w = central_stats);
      List.iter
        (fun (engine_label, run) ->
          let q, res = run (session ()) in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: quotient bit-identical" label engine_label)
            true (q = central_q);
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: NR/NM/MS identical to the central wire" label engine_label)
            true
            (Wire.stats (Net_wire.merge (logs_of res)) = central_stats))
        [ ("memory", fun s -> Endpoint.run_session_memory s);
          ("socket", fun s -> Endpoint.run_session_socket s) ])
    [ (3, 4); (0, 7); (5, 0) ]

(* --- full pipelines across engines --------------------------------------------- *)

let pipeline_workload = Util.workload

(* The distributed pipelines charge the same NR and NM as the central
   oracle, but the typed payload encodings pad each value to whole
   bytes (DESIGN.md, "central vs distributed wire sizes"): a value of
   b >= 1 central bits occupies 8 * ceil(b / 8) <= 8b distributed bits,
   plus at most one padded byte of per-message fixed overhead — hence
   MS_central <= MS_distributed <= 9 * MS_central + 8 * NM. *)
let check_ms_envelope label ~(central : Wire.stats) ~distributed_bits =
  Alcotest.(check bool)
    (label ^ ": MS within the typed-encoding envelope")
    true
    (distributed_bits >= central.Wire.bits
    && distributed_bits <= (9 * central.Wire.bits) + (8 * central.Wire.messages))

let session_engines = [ ("memory", `Memory); ("socket", `Socket) ]

let run_session_over engine session =
  match engine with
  | `Memory -> Endpoint.run_session_memory session
  | `Socket -> Endpoint.run_session_socket session

let check_links_cross_engine (seed, n, edges, actions, m) =
  let label = Printf.sprintf "links m=%d seed=%d" m seed in
  let g, logs = pipeline_workload ~seed ~n ~edges ~actions ~m in
  let config = Protocol4.default_config ~h:2 in
  let central =
    Driver.link_strengths_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs config
  in
  let session () =
    Driver_distributed.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs
      config
  in
  let w = Wire.create () in
  let sim = Session.run (session ()) ~wire:w in
  let sim_stats = Wire.stats w in
  Alcotest.(check bool) (label ^ ": sim strengths bit-identical to the central oracle") true
    (sim.Protocol4.strengths = central.Driver.strengths);
  Alcotest.(check int) (label ^ ": NR matches the central oracle")
    central.Driver.wire.Wire.rounds sim_stats.Wire.rounds;
  Alcotest.(check int) (label ^ ": NM matches the central oracle")
    central.Driver.wire.Wire.messages sim_stats.Wire.messages;
  check_ms_envelope label ~central:central.Driver.wire ~distributed_bits:sim_stats.Wire.bits;
  List.iter
    (fun (engine_label, engine) ->
      let (result : Protocol4.result), res = run_session_over engine (session ()) in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: result identical to sim" label engine_label)
        true
        (result.Protocol4.strengths = sim.Protocol4.strengths
        && result.Protocol4.pair_estimates = sim.Protocol4.pair_estimates
        && result.Protocol4.pairs = sim.Protocol4.pairs);
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: NR/NM/MS identical to sim" label engine_label)
        true
        (Wire.stats (Net_wire.merge (logs_of res)) = sim_stats))
    session_engines

let check_scores_cross_engine (seed, n, edges, actions, m) =
  let label = Printf.sprintf "scores m=%d seed=%d" m seed in
  let g, logs = pipeline_workload ~seed ~n ~edges ~actions ~m in
  let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
  let tau = 6 and modulus = 1 lsl 20 in
  let central =
    Driver.user_scores_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs ~tau
      ~modulus config
  in
  let session () =
    Driver_distributed.user_scores_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g
      ~logs ~tau ~modulus config
  in
  let w = Wire.create () in
  let sim = Session.run (session ()) ~wire:w in
  let sim_stats = Wire.stats w in
  Alcotest.(check bool) (label ^ ": sim scores bit-identical to the central oracle") true
    (sim.Driver_distributed.scores = central.Driver.scores);
  Alcotest.(check bool) (label ^ ": sim graphs identical to the central oracle") true
    (sim.Driver_distributed.graphs = central.Driver.graphs);
  Alcotest.(check int) (label ^ ": NR matches the central oracle")
    central.Driver.wire.Wire.rounds sim_stats.Wire.rounds;
  Alcotest.(check int) (label ^ ": NM matches the central oracle")
    central.Driver.wire.Wire.messages sim_stats.Wire.messages;
  check_ms_envelope label ~central:central.Driver.wire ~distributed_bits:sim_stats.Wire.bits;
  List.iter
    (fun (engine_label, engine) ->
      let (result : Driver_distributed.scores), res = run_session_over engine (session ()) in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: result identical to sim" label engine_label)
        true
        (result.Driver_distributed.scores = sim.Driver_distributed.scores
        && result.Driver_distributed.graphs = sim.Driver_distributed.graphs);
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: NR/NM/MS identical to sim" label engine_label)
        true
        (Wire.stats (Net_wire.merge (logs_of res)) = sim_stats))
    session_engines

let test_links_cross_engine () =
  List.iter check_links_cross_engine
    [ (101, 24, 70, 10, 2); (103, 30, 90, 12, 2); (101, 24, 70, 10, 3); (103, 30, 90, 12, 3) ]

let test_scores_cross_engine () =
  List.iter check_scores_cross_engine
    [ (105, 18, 50, 8, 2); (107, 22, 66, 10, 2); (105, 18, 50, 8, 3); (107, 22, 66, 10, 3) ]

(* --- byte accounting ----------------------------------------------------------- *)

(* The documented overhead formula (DESIGN.md "Framing overhead"): a
   fault-free run transmits, beyond the data frames, one End_of_round
   per endpoint per peer per executed step (active rounds + the
   quiescent one) and one Fin per endpoint per peer; the socket backend
   adds one Hello per connection. *)
let expected_transport_bytes ~m ~rounds ~data_framed ~hellos =
  let eor = Frame.framed_length (Frame.End_of_round { round = 1; sender = 0; total = 0; to_dst = 0 }) in
  let fin = Frame.framed_length (Frame.Fin { sender = 0 }) in
  let hello = Frame.framed_length (Frame.Hello { sender = 0 }) in
  data_framed
  + (m * (rounds + 1) * (m - 1) * eor)
  + (m * (m - 1) * fin)
  + if hellos then m * (m - 1) / 2 * hello else 0

let check_byte_accounting engine ~hellos label =
  let m = 4 in
  let parties = providers m in
  let modulus = 1 lsl 40 in
  let inputs = Array.init m (fun k -> Array.init 16 (fun l -> (k * 1000) + l)) in
  let _, sim_stats = p1_reference ~seed:31 ~parties ~modulus ~inputs in
  let _, res = run_p1_over engine ~seed:31 ~parties ~modulus ~inputs in
  let logs = logs_of res in
  let totals = Net_wire.totals logs in
  (* Payload bytes: exactly the simulated MS. *)
  Alcotest.(check int)
    (label ^ ": payload bytes = simulated MS / 8")
    (sim_stats.Wire.bits / 8) totals.Net_wire.payload_bytes;
  (* Measured transport bytes: payload + the documented framing overhead. *)
  let rounds = res.Endpoint.outcomes.(0).Endpoint.rounds in
  Alcotest.(check int)
    (label ^ ": transport bytes = data frames + documented control overhead")
    (expected_transport_bytes ~m ~rounds ~data_framed:totals.Net_wire.framed_bytes ~hellos)
    res.Endpoint.transport_bytes

let test_memory_byte_accounting () =
  check_byte_accounting (mem_engine ()) ~hellos:false "memory"

let test_socket_byte_accounting () =
  check_byte_accounting sock_engine ~hellos:true "socket"

(* --- fault injection ------------------------------------------------------------ *)

let test_dropped_frames_are_retransmitted () =
  let m = 3 in
  let parties = providers m in
  let modulus = 1 lsl 16 in
  let inputs = Array.init m (fun k -> [| 2 * k; 5 + k |]) in
  let reference, sim_stats = p1_reference ~seed:41 ~parties ~modulus ~inputs in
  (* Drop two early frames: the Nack/retransmit path must recover and
     the protocol outcome must be unchanged. *)
  let result, res =
    run_p1_over
      (mem_engine ~config:fast ~fault:(Fault.drop_nth [ 1; 5 ]) ())
      ~seed:41 ~parties ~modulus ~inputs
  in
  Alcotest.(check bool) "shares survive frame loss" true
    (result.Protocol1.share1 = reference.Protocol1.share1
    && result.Protocol1.share2 = reference.Protocol1.share2);
  Alcotest.(check bool) "wire statistics survive frame loss" true
    (Wire.stats (Net_wire.merge (logs_of res)) = sim_stats);
  (* The retransmissions cost real bytes beyond the fault-free run. *)
  let _, clean = run_p1_over (mem_engine ~config:fast ()) ~seed:41 ~parties ~modulus ~inputs in
  Alcotest.(check bool) "retransmissions are visible in transport bytes" true
    (res.Endpoint.transport_bytes > clean.Endpoint.transport_bytes)

let test_delayed_frame_reorders_and_recovers () =
  let m = 3 in
  let parties = providers m in
  let modulus = 1 lsl 16 in
  let inputs = Array.init m (fun k -> [| 9 * k; k + 1 |]) in
  let reference, sim_stats = p1_reference ~seed:43 ~parties ~modulus ~inputs in
  (* Hold one round-1 frame past the round timeout: its round completes
     late (via the delayed original or a Nacked retransmission), and
     later frames overtake it — the reorder path. *)
  let result, res =
    run_p1_over
      (mem_engine ~config:fast ~fault:(Fault.delay_nth [ (2, 0.15) ]) ())
      ~seed:43 ~parties ~modulus ~inputs
  in
  Alcotest.(check bool) "shares survive reordering" true
    (result.Protocol1.share1 = reference.Protocol1.share1
    && result.Protocol1.share2 = reference.Protocol1.share2);
  Alcotest.(check bool) "wire statistics survive reordering" true
    (Wire.stats (Net_wire.merge (logs_of res)) = sim_stats)

let test_blackhole_times_out_cleanly () =
  let m = 3 in
  let parties = providers m in
  let modulus = 1 lsl 16 in
  let inputs = Array.init m (fun k -> [| k |]) in
  let s = State.create ~seed:47 () in
  let session = P1d.make s ~parties ~modulus ~inputs in
  let t0 = Unix.gettimeofday () in
  (match
     Endpoint.run_memory ~config:fast ~fault:(Fault.blackhole ~src:0 ~dst:2)
       ~parties:session.Session.parties ~programs:session.Session.programs
       ~max_rounds:P1d.max_rounds ()
   with
  | _ -> Alcotest.fail "a dead link must not let the run complete"
  | exception Endpoint.Round_timeout { party; round; phase; missing } ->
    Alcotest.(check bool) "starved party raises" true (party = Wire.Provider 2);
    Alcotest.(check int) "at the round the link died" 1 round;
    Alcotest.(check (option string)) "no phase map on raw programs" None phase;
    Alcotest.(check bool) "names the silent peer" true (missing = [ Wire.Provider 0 ]));
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "bounded retries, no hang (%.2fs)" elapsed)
    true
    (elapsed < 10. *. fast.Endpoint.round_timeout)

(* --- sharded plans over the worker pool ----------------------------------------- *)

module Shard = Spe_core.Shard
module Plan = Spe_core.Plan
module Protocol5 = Spe_core.Protocol5

(* Drive every stage of a plan through a transport worker pool,
   keeping each shard session's group size and endpoint result for the
   accounting checks below. *)
let run_plan_over engine ~workers (plan : _ Plan.t) =
  let groups = ref [] in
  List.iter
    (fun (stage : Plan.stage) ->
      let rs =
        match engine with
        | `Memory -> Endpoint.run_sessions_memory ~workers stage.Plan.sessions
        | `Socket -> Endpoint.run_sessions_socket ~workers stage.Plan.sessions
      in
      Array.iteri
        (fun i ((), res) ->
          let m = Array.length stage.Plan.sessions.(i).Session.parties in
          groups := (m, res) :: !groups)
        rs)
    plan.Plan.stages;
  (plan.Plan.result (), List.rev !groups)

(* Each shard session runs on its own connection group, so the framing
   closed form of the accounting tests must hold per group — with no
   Hello term: pool groups (memory, and socketpair socket groups) have
   no dial handshake. *)
let check_plan_accounting label plan groups ~payload_ref =
  List.iteri
    (fun g (m, (res : Endpoint.result)) ->
      let rounds =
        Array.fold_left (fun acc o -> max acc o.Endpoint.rounds) 0 res.Endpoint.outcomes
      in
      let totals = Net_wire.totals (logs_of res) in
      Alcotest.(check int)
        (Printf.sprintf "%s group %d: framing closed form" label g)
        (expected_transport_bytes ~m ~rounds ~data_framed:totals.Net_wire.framed_bytes
           ~hellos:false)
        res.Endpoint.transport_bytes)
    groups;
  let payload =
    List.fold_left
      (fun acc (_, res) -> acc + (Net_wire.totals (logs_of res)).Net_wire.payload_bytes)
      0 groups
  in
  Alcotest.(check int)
    (label ^ ": per-shard payload bytes sum to the unsharded MS")
    payload_ref payload;
  let rounds = List.fold_left (fun acc (_, res) ->
      acc + Array.fold_left (fun a o -> max a o.Endpoint.rounds) 0 res.Endpoint.outcomes)
      0 groups
  in
  Alcotest.(check int)
    (label ^ ": executed rounds sum to the plan total")
    (Plan.total_rounds plan) rounds

let test_sharded_links_pool_cross_engine () =
  let seed = 211 and n = 24 and edges = 70 and actions = 10 and m = 3 in
  let g, logs = pipeline_workload ~seed ~n ~edges ~actions ~m in
  let config = Protocol4.default_config ~h:2 in
  let session =
    Driver_distributed.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs
      config
  in
  let w = Wire.create () in
  let sim = Session.run session ~wire:w in
  let payload_ref = (Wire.stats w).Wire.bits / 8 in
  List.iter
    (fun (engine_label, engine) ->
      List.iter
        (fun shards ->
          let label = Printf.sprintf "sharded links %s k=%d" engine_label shards in
          let plan =
            Shard.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs
              ~shards config
          in
          let result, groups = run_plan_over engine ~workers:2 plan in
          Alcotest.(check bool) (label ^ ": bit-identical to the unsharded run") true
            (result.Protocol4.strengths = sim.Protocol4.strengths
            && result.Protocol4.pair_estimates = sim.Protocol4.pair_estimates
            && result.Protocol4.pairs = sim.Protocol4.pairs);
          check_plan_accounting label plan groups ~payload_ref)
        [ 1; 3 ])
    session_engines

let test_sharded_links_non_exclusive_pool_cross_engine () =
  let seed = 223 and n = 20 and edges = 60 and actions = 9 and m = 3 in
  let s = State.create ~seed () in
  let g = Generate.erdos_renyi_gnm s ~n ~m:edges in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log =
    Cascade.generate s planted
      { Cascade.num_actions = actions; seeds_per_action = 2; max_delay = 3 }
  in
  let spec = Partition.random_class_spec s ~num_actions:actions ~m ~num_classes:3 in
  let logs = Partition.non_exclusive s log ~spec in
  let config = Protocol4.default_config ~h:2 in
  let obfuscation = Protocol5.Basic in
  let session =
    Driver_distributed.links_non_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g
      ~logs ~spec ~obfuscation config
  in
  let w = Wire.create () in
  let sim = Session.run session ~wire:w in
  let payload_ref = (Wire.stats w).Wire.bits / 8 in
  List.iter
    (fun (engine_label, engine) ->
      let label = Printf.sprintf "sharded non-exclusive links %s k=3" engine_label in
      let plan =
        Shard.links_non_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs ~spec
          ~obfuscation ~shards:3 config
      in
      let result, groups = run_plan_over engine ~workers:2 plan in
      Alcotest.(check bool) (label ^ ": bit-identical to the unsharded run") true
        (result.Protocol4.strengths = sim.Protocol4.strengths
        && result.Protocol4.pair_estimates = sim.Protocol4.pair_estimates
        && result.Protocol4.pairs = sim.Protocol4.pairs);
      check_plan_accounting label plan groups ~payload_ref)
    session_engines

let test_sharded_scores_pool_cross_engine () =
  let seed = 227 and n = 16 and edges = 44 and actions = 8 and m = 2 in
  let g, logs = pipeline_workload ~seed ~n ~edges ~actions ~m in
  let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
  let tau = 6 and modulus = 1 lsl 20 in
  let session =
    Driver_distributed.user_scores_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g
      ~logs ~tau ~modulus config
  in
  let w = Wire.create () in
  let sim = Session.run session ~wire:w in
  let payload_ref = (Wire.stats w).Wire.bits / 8 in
  List.iter
    (fun (engine_label, engine) ->
      let label = Printf.sprintf "sharded scores %s k=3" engine_label in
      let plan =
        Shard.user_scores_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs
          ~tau ~modulus ~shards:3 config
      in
      let result, groups = run_plan_over engine ~workers:2 plan in
      Alcotest.(check bool) (label ^ ": bit-identical to the unsharded run") true
        (result.Driver_distributed.scores = sim.Driver_distributed.scores
        && result.Driver_distributed.graphs = sim.Driver_distributed.graphs);
      check_plan_accounting label plan groups ~payload_ref)
    session_engines

(* Regression pinning the two execution engines to each other across
   shard counts: the reactor pool (run_sessions_socket — machines on
   one poll loop) and the blocking thread pool (run_sessions_memory —
   the differential oracle it must never drift from) must produce
   bit-identical links and scores results at k ∈ {1, 2, 4, 8}. *)
let test_reactor_vs_blocking_k_sweep () =
  let seed = 229 and n = 20 and edges = 55 and actions = 8 and m = 3 in
  let g, logs = pipeline_workload ~seed ~n ~edges ~actions ~m in
  let links_config = Protocol4.default_config ~h:2 in
  let links_sim =
    Session.run
      (Driver_distributed.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g
         ~logs links_config)
      ~wire:(Wire.create ())
  in
  let scores_config = { Protocol6.default_config with Protocol6.key_bits = 64 } in
  let tau = 4 and modulus = 1 lsl 20 in
  let scores_sim =
    Session.run
      (Driver_distributed.user_scores_exclusive (State.create ~seed:(seed + 2) ())
         ~graph:g ~logs ~tau ~modulus scores_config)
      ~wire:(Wire.create ())
  in
  List.iter
    (fun shards ->
      let links_plan () =
        Shard.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs ~shards
          links_config
      in
      let reactor_links, _ = run_plan_over `Socket ~workers:2 (links_plan ()) in
      let blocking_links, _ = run_plan_over `Memory ~workers:2 (links_plan ()) in
      Alcotest.(check bool)
        (Printf.sprintf "links k=%d: reactor = blocking oracle = sim" shards)
        true
        (reactor_links.Protocol4.strengths = blocking_links.Protocol4.strengths
        && reactor_links.Protocol4.strengths = links_sim.Protocol4.strengths
        && reactor_links.Protocol4.pair_estimates = links_sim.Protocol4.pair_estimates
        && reactor_links.Protocol4.pairs = links_sim.Protocol4.pairs);
      let scores_plan () =
        Shard.user_scores_exclusive (State.create ~seed:(seed + 2) ()) ~graph:g ~logs
          ~tau ~modulus ~shards scores_config
      in
      let reactor_scores, _ = run_plan_over `Socket ~workers:2 (scores_plan ()) in
      let blocking_scores, _ = run_plan_over `Memory ~workers:2 (scores_plan ()) in
      Alcotest.(check bool)
        (Printf.sprintf "scores k=%d: reactor = blocking oracle = sim" shards)
        true
        (reactor_scores.Driver_distributed.scores
         = blocking_scores.Driver_distributed.scores
        && reactor_scores.Driver_distributed.scores = scores_sim.Driver_distributed.scores
        && reactor_scores.Driver_distributed.graphs = scores_sim.Driver_distributed.graphs))
    [ 1; 2; 4; 8 ]

(* A shard whose group stops delivering must fail the stage naming the
   shard and its phase, and the pool must close the sibling groups
   rather than wait out their timeouts. *)
let test_pool_stall_cancels_siblings () =
  let g, logs = pipeline_workload ~seed:211 ~n:24 ~edges:70 ~actions:10 ~m:3 in
  let config = Protocol4.default_config ~h:2 in
  let plan =
    Shard.links_exclusive (State.create ~seed:212 ()) ~graph:g ~logs ~shards:4 config
  in
  let stage = List.hd plan.Plan.stages in
  let ns = Array.length stage.Plan.sessions in
  Alcotest.(check bool) "plan cut into several shard sessions" true (ns >= 4);
  let faults = Array.make ns None in
  faults.(2) <- Some (Fault.blackhole ~src:0 ~dst:1);
  let t0 = Unix.gettimeofday () in
  (match
     Endpoint.run_sessions_memory ~config:fast ~workers:2 ~faults stage.Plan.sessions
   with
  | _ -> Alcotest.fail "a stalled shard must not let the stage complete"
  | exception Endpoint.Shard_failed { shard; phase; exn } ->
    Alcotest.(check int) "names the stalled shard" 2 shard;
    Alcotest.(check bool) "names the phase" true (phase <> None);
    Alcotest.(check bool) "root cause is the round timeout" true
      (match exn with Endpoint.Round_timeout _ -> true | _ -> false));
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Bound: the stalled shard's own retries, plus slack for the claim
     order — never the siblings' full timeouts serialised. *)
  Alcotest.(check bool)
    (Printf.sprintf "siblings cancelled, no hang (%.2fs)" elapsed)
    true
    (elapsed < 20. *. fast.Endpoint.round_timeout)

(* The full Protocol 4 exclusive pipeline under a seeded lossy link
   layer: every seeded drop is recovered by the Nack/retransmit
   machinery, so the memory-engine result stays bit-identical to the
   fault-free simulated run, first-transmission accounting still
   matches the simulated wire exactly, and the transport-byte total
   sits at or above the fault-free framing closed form (retransmissions
   only ever add bytes). *)
let test_links_seeded_faults_memory () =
  let seed = 211 and n = 24 and edges = 70 and actions = 10 and m = 3 in
  let g, logs = pipeline_workload ~seed ~n ~edges ~actions ~m in
  let config = Protocol4.default_config ~h:2 in
  let session () =
    Driver_distributed.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs
      config
  in
  let w = Wire.create () in
  let sim = Session.run (session ()) ~wire:w in
  let sim_stats = Wire.stats w in
  let fault =
    Fault.seeded (State.create ~seed:4242 ()) ~drop:0.01 ~delay:0.02 ~max_delay:0.05
  in
  let trace = Spe_obs.Trace.create () in
  let (result : Protocol4.result), res =
    Endpoint.run_session_memory ~config:fast ~fault ~trace (session ())
  in
  Alcotest.(check bool) "lossy memory links: result bit-identical to the fault-free sim"
    true
    (result.Protocol4.strengths = sim.Protocol4.strengths
    && result.Protocol4.pair_estimates = sim.Protocol4.pair_estimates
    && result.Protocol4.pairs = sim.Protocol4.pairs);
  Alcotest.(check bool) "lossy memory links: NR/NM/MS identical to sim" true
    (Wire.stats (Net_wire.merge (logs_of res)) = sim_stats);
  let report =
    Spe_obs.Metrics.of_trace ~protocol:"links" ~engine:"memory" ~parties:(m + 1) trace
  in
  Alcotest.(check bool) "the seed produced losses and recoveries" true
    (report.Spe_obs.Metrics.faults_dropped >= 1
    && report.Spe_obs.Metrics.retransmits >= 1);
  let totals = Net_wire.totals (logs_of res) in
  let rounds =
    Array.fold_left (fun acc o -> max acc o.Endpoint.rounds) 0 res.Endpoint.outcomes
  in
  Alcotest.(check bool) "transport bytes at or above the closed form" true
    (res.Endpoint.transport_bytes
    >= expected_transport_bytes ~m:(m + 1) ~rounds
         ~data_framed:totals.Net_wire.framed_bytes ~hellos:false)

(* ------------------------------------------------------------------------------ *)

let () =
  Alcotest.run "spe_net"
    [
      ( "frame",
        [
          Alcotest.test_case "round trips" `Quick test_frame_roundtrips;
          Alcotest.test_case "rejects garbage" `Quick test_frame_rejects_garbage;
          Alcotest.test_case "payload length matches runtime" `Quick
            test_frame_payload_length_matches_runtime;
          Alcotest.test_case "encode_into allocates nothing" `Quick
            test_frame_encode_into_zero_alloc;
        ] );
      ( "transport",
        [
          Alcotest.test_case "memory delivery" `Quick test_memory_transport_delivers;
          Alcotest.test_case "socket delivery" `Quick test_socket_transport_delivers;
        ] );
      ( "endpoint",
        [
          Alcotest.test_case "quiescent round not charged" `Quick
            test_endpoint_quiescent_round_not_charged;
          Alcotest.test_case "non-termination" `Quick test_endpoint_nontermination_detected;
          Alcotest.test_case "unknown destination" `Quick
            test_endpoint_rejects_unknown_destination;
          Alcotest.test_case "forged source" `Quick test_endpoint_rejects_forged_source;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "protocol 1 over memory" `Quick test_p1_memory_matches_sim;
          Alcotest.test_case "protocol 1 over sockets" `Quick test_p1_socket_matches_sim;
          Alcotest.test_case "protocol 2 over memory" `Quick test_p2_memory_matches_sim;
          Alcotest.test_case "protocol 2 over sockets" `Quick test_p2_socket_matches_sim;
          Alcotest.test_case "protocol 3 across engines" `Quick test_p3_cross_engine;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "links across engines" `Quick test_links_cross_engine;
          Alcotest.test_case "scores across engines" `Quick test_scores_cross_engine;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "memory bytes" `Quick test_memory_byte_accounting;
          Alcotest.test_case "socket bytes" `Quick test_socket_byte_accounting;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop triggers retransmit" `Quick
            test_dropped_frames_are_retransmitted;
          Alcotest.test_case "delay reorders and recovers" `Quick
            test_delayed_frame_reorders_and_recovers;
          Alcotest.test_case "blackhole times out cleanly" `Quick
            test_blackhole_times_out_cleanly;
          Alcotest.test_case "links pipeline under seeded loss" `Quick
            test_links_seeded_faults_memory;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "sharded links over pools" `Quick
            test_sharded_links_pool_cross_engine;
          Alcotest.test_case "sharded non-exclusive links over pools" `Quick
            test_sharded_links_non_exclusive_pool_cross_engine;
          Alcotest.test_case "sharded scores over pools" `Quick
            test_sharded_scores_pool_cross_engine;
          Alcotest.test_case "reactor vs blocking oracle at k in {1,2,4,8}" `Quick
            test_reactor_vs_blocking_k_sweep;
          Alcotest.test_case "stalled shard cancels siblings" `Quick
            test_pool_stall_cancels_siblings;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 1717 |]))
          (qcheck_frame_tests @ qcheck_reactor_tests) );
    ]
