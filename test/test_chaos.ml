(* Tests for the chaos subsystem: the spe-schedule/1 document
   round-trip (golden file + strict rejection, mirroring the
   spe-metrics schema tests), the event-to-fault-policy compiler, the
   invariant oracles' attribution on fatal schedules, schedule
   shrinking against a planted fault-handling bug (the mutation check
   from the acceptance criteria), and a short green campaign across
   both pipelines and both engines. *)

module Schedule = Spe_chaos.Schedule
module Harness = Spe_chaos.Harness
module Campaign = Spe_chaos.Campaign
module Fault = Spe_net.Fault

let links_workload =
  { Schedule.wseed = 97; users = 18; edges = 50; actions = 8; providers = 3 }

let links_base =
  {
    Schedule.seed = 7;
    pipeline = Schedule.Links;
    engine = Schedule.Memory;
    shards = 3;
    workers = 2;
    workload = links_workload;
    events = [];
  }

(* --- the spe-schedule/1 document ------------------------------------------- *)

(* One schedule exercising every event kind.  [seconds] is an exact
   binary fraction so the golden text below is a serialization fixed
   point. *)
let full_schedule =
  {
    links_base with
    Schedule.engine = Schedule.Socket;
    events =
      [
        Schedule.Skew { factor = 1.25 };
        Schedule.Drop { session = 0; src = 0; dst = 1; nth = 1 };
        Schedule.Delay { session = 1; src = 2; dst = 0; nth = 3; seconds = 0.0625 };
        Schedule.Duplicate { session = 2; src = 1; dst = 3; nth = 0 };
        Schedule.Blackhole { session = 0; src = 3; dst = 2; from_nth = 2 };
        Schedule.Kill { session = 4 };
      ];
  }

let golden =
  {|{
  "schema": "spe-schedule/1",
  "seed": 7,
  "pipeline": "links",
  "engine": "socket",
  "shards": 3,
  "workers": 2,
  "workload": {
    "seed": 97,
    "users": 18,
    "edges": 50,
    "actions": 8,
    "providers": 3
  },
  "events": [
    {
      "kind": "skew",
      "factor": 1.25
    },
    {
      "kind": "drop",
      "session": 0,
      "src": 0,
      "dst": 1,
      "nth": 1
    },
    {
      "kind": "delay",
      "session": 1,
      "src": 2,
      "dst": 0,
      "nth": 3,
      "seconds": 0.0625
    },
    {
      "kind": "duplicate",
      "session": 2,
      "src": 1,
      "dst": 3,
      "nth": 0
    },
    {
      "kind": "blackhole",
      "session": 0,
      "src": 3,
      "dst": 2,
      "from_nth": 2
    },
    {
      "kind": "kill",
      "session": 4
    }
  ]
}
|}

let test_schedule_golden_roundtrip () =
  Alcotest.(check string) "serializes to the golden document" golden
    (Schedule.to_string full_schedule);
  let parsed = Schedule.of_string golden in
  Alcotest.(check bool) "golden document parses back to the same schedule" true
    (parsed = full_schedule);
  Alcotest.(check string) "the content id survives the round-trip" (Schedule.id full_schedule)
    (Schedule.id parsed);
  Alcotest.(check string) "the content id is stable" "6b1762545e8c"
    (Schedule.id full_schedule)

(* Replace the first occurrence of [sub] in [s] (which must occur). *)
let tamper ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then Alcotest.failf "tamper target %S not found" sub
    else if String.sub s i m = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let test_schedule_rejects_malformed () =
  let reject label doc =
    match Schedule.of_string doc with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  reject "mis-versioned schema" (tamper ~sub:"spe-schedule/1" ~by:"spe-schedule/999" golden);
  reject "missing schema" (tamper ~sub:{|"schema": "spe-schedule/1",|} ~by:"" golden);
  reject "unknown event kind" (tamper ~sub:{|"kind": "drop"|} ~by:{|"kind": "corrupt"|} golden);
  reject "unknown pipeline"
    (tamper ~sub:{|"pipeline": "links"|} ~by:{|"pipeline": "sideways"|} golden);
  reject "ill-typed field" (tamper ~sub:{|"seed": 7|} ~by:{|"seed": "seven"|} golden);
  reject "truncated document" (String.sub golden 0 (String.length golden / 2));
  reject "not an object" "[1, 2, 3]"

(* A replayed schedule pins its own pipeline; a mismatched --target is
   a hard error naming both values, never a silent run of the wrong
   pipeline. *)
let test_replay_target_check () =
  let ok = function
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  in
  ok (Schedule.check_replay_target links_base ~requested:None);
  ok (Schedule.check_replay_target links_base ~requested:(Some Schedule.Links));
  match Schedule.check_replay_target links_base ~requested:(Some Schedule.Scores) with
  | Ok () -> Alcotest.fail "mismatched --target should be refused"
  | Error msg ->
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "names the schedule's pipeline" true (contains "links");
    Alcotest.(check bool) "names the requested target" true (contains "scores")

(* --- the event-to-policy compiler ------------------------------------------ *)

let test_fault_policy_compiles () =
  let sched =
    {
      links_base with
      Schedule.events =
        [
          Schedule.Duplicate { session = 0; src = 0; dst = 1; nth = 0 };
          Schedule.Drop { session = 0; src = 0; dst = 1; nth = 1 };
          Schedule.Delay { session = 0; src = 0; dst = 1; nth = 2; seconds = 0.125 };
          Schedule.Blackhole { session = 0; src = 2; dst = 1; from_nth = 1 };
          Schedule.Drop { session = 1; src = 0; dst = 1; nth = 0 };
        ];
    }
  in
  (match Schedule.fault_for sched ~session:0 with
  | None -> Alcotest.fail "session 0 has events, expected a policy"
  | Some policy ->
    let next () = Fault.decide policy ~src:0 ~dst:1 in
    Alcotest.(check bool) "frame 0 duplicated" true (next () = Fault.Duplicate);
    Alcotest.(check bool) "frame 1 dropped" true (next () = Fault.Drop);
    Alcotest.(check bool) "frame 2 delayed" true (next () = Fault.Delay 0.125);
    Alcotest.(check bool) "frame 3 delivered" true (next () = Fault.Deliver);
    (* An independent per-link counter: the 2 -> 1 blackhole starts at
       its own frame 1, untouched by the 0 -> 1 traffic above. *)
    Alcotest.(check bool) "blackhole link delivers before from_nth" true
      (Fault.decide policy ~src:2 ~dst:1 = Fault.Deliver);
    Alcotest.(check bool) "blackhole link drops from from_nth on" true
      (Fault.decide policy ~src:2 ~dst:1 = Fault.Drop
      && Fault.decide policy ~src:2 ~dst:1 = Fault.Drop);
    (* Untargeted links pass through. *)
    Alcotest.(check bool) "other links deliver" true
      (Fault.decide policy ~src:1 ~dst:0 = Fault.Deliver));
  (match Schedule.fault_for sched ~session:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "session 2 has no events, expected no policy");
  Alcotest.(check bool) "kills_session only on kill events" true
    ((not (Schedule.kills_session sched 0))
    && Schedule.kills_session
         { sched with Schedule.events = [ Schedule.Kill { session = 3 } ] }
         3)

(* --- invariant oracles on fatal schedules ---------------------------------- *)

let test_kill_attribution () =
  let sched =
    { links_base with Schedule.events = [ Schedule.Kill { session = 1 } ] }
  in
  match Harness.run sched with
  | Harness.Pass -> ()
  | Harness.Fail { oracle; detail } ->
    Alcotest.failf "kill schedule should pass attribution, got %s: %s" oracle detail

let test_blackhole_attribution () =
  let sched =
    {
      links_base with
      Schedule.events =
        [ Schedule.Blackhole { session = 0; src = 0; dst = 1; from_nth = 0 } ];
    }
  in
  match Harness.run sched with
  | Harness.Pass -> ()
  | Harness.Fail { oracle; detail } ->
    Alcotest.failf "blackhole schedule should pass attribution, got %s: %s" oracle detail

let test_out_of_range_schedule_rejected () =
  let sched =
    { links_base with Schedule.events = [ Schedule.Kill { session = 99 } ] }
  in
  match Harness.run sched with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "a schedule naming an unknown session must be refused"

(* --- the planted-bug mutation check ---------------------------------------- *)

(* The acceptance-criterion mutation check: a deliberately planted
   fault-handling bug — modelled as the result oracle breaking whenever
   a frame is dropped by party 0 — must be caught by the harness and
   shrunk to a minimal schedule of at most 3 fault events that replays
   deterministically. *)
let test_planted_bug_caught_and_shrunk () =
  let bug (sched : Schedule.t) =
    List.exists
      (function Schedule.Drop d -> d.src = 0 | _ -> false)
      sched.Schedule.events
  in
  let sched =
    {
      links_base with
      Schedule.events =
        [
          Schedule.Skew { factor = 1.25 };
          Schedule.Duplicate { session = 0; src = 1; dst = 0; nth = 2 };
          Schedule.Drop { session = 0; src = 0; dst = 1; nth = 1 };
          Schedule.Drop { session = 1; src = 1; dst = 2; nth = 3 };
          Schedule.Delay { session = 2; src = 0; dst = 1; nth = 0; seconds = 0.0625 };
        ];
    }
  in
  (match Harness.run ~bug sched with
  | Harness.Fail { oracle = "result"; _ } -> ()
  | Harness.Pass -> Alcotest.fail "the planted bug went uncaught"
  | Harness.Fail { oracle; _ } -> Alcotest.failf "expected a result violation, got %s" oracle);
  let shrunk, failure = Campaign.shrink ~bug sched in
  Alcotest.(check string) "the shrunk schedule still violates the result oracle" "result"
    failure.Harness.oracle;
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to at most 3 fault events (got %d)"
       (List.length shrunk.Schedule.events))
    true
    (List.length shrunk.Schedule.events <= 3);
  Alcotest.(check bool) "every surviving event is load-bearing" true
    (List.for_all
       (function Schedule.Drop d -> d.src = 0 | _ -> false)
       shrunk.Schedule.events);
  (* The reproducer replays deterministically: same verdict, twice,
     after a serialization round-trip. *)
  let replayed = Schedule.of_string (Schedule.to_string shrunk) in
  let verdicts =
    List.map (fun () -> Harness.run ~bug replayed) [ (); () ]
  in
  Alcotest.(check bool) "replay is deterministic" true
    (List.for_all
       (function
         | Harness.Fail f -> f = failure
         | Harness.Pass -> false)
       verdicts)

(* --- a short campaign ------------------------------------------------------ *)

let test_short_campaign_green () =
  let progress = ref 0 in
  let summary =
    Campaign.run
      ~on_result:(fun _ _ _ -> incr progress)
      ~seeds:8 ~seed:1100
      ~targets:
        [
          (Schedule.Links, Schedule.Memory);
          (Schedule.Scores, Schedule.Memory);
          (Schedule.Links, Schedule.Socket);
          (Schedule.Scores, Schedule.Socket);
        ]
      ()
  in
  Alcotest.(check int) "every seed ran" 8 !progress;
  Alcotest.(check int) "every seed reported" 8 summary.Campaign.runs;
  (match summary.Campaign.violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "campaign found a violation (seed %d, %s: %s)" v.Campaign.seed
      v.Campaign.failure.Harness.oracle v.Campaign.failure.Harness.detail);
  (* Generation is deterministic in the seed. *)
  let a = Harness.generate ~seed:1103 Schedule.Scores Schedule.Socket in
  let b = Harness.generate ~seed:1103 Schedule.Scores Schedule.Socket in
  Alcotest.(check bool) "generate is deterministic" true (a = b && Schedule.id a = Schedule.id b)

let () =
  Alcotest.run "spe_chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "golden round-trip" `Quick test_schedule_golden_roundtrip;
          Alcotest.test_case "rejects malformed documents" `Quick
            test_schedule_rejects_malformed;
          Alcotest.test_case "replay --target mismatch refused" `Quick
            test_replay_target_check;
          Alcotest.test_case "compiles events to a fault policy" `Quick
            test_fault_policy_compiles;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "kill attribution" `Quick test_kill_attribution;
          Alcotest.test_case "blackhole attribution" `Quick test_blackhole_attribution;
          Alcotest.test_case "out-of-range schedules refused" `Quick
            test_out_of_range_schedule_rejected;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "planted bug caught and shrunk" `Slow
            test_planted_bug_caught_and_shrunk;
        ] );
      ( "campaign",
        [ Alcotest.test_case "short campaign runs green" `Slow test_short_campaign_green ] );
    ]
