(* Tests for the crypto substrate: Miller-Rabin against a known prime
   table, RSA and Paillier round-trips and homomorphic laws, and the
   shift cipher's window-membership property that Protocol 5's enhanced
   obfuscation relies on. *)

module Nat = Spe_bignum.Nat
module State = Spe_rng.State
module Prime = Spe_crypto.Prime
module Rsa = Spe_crypto.Rsa
module Paillier = Spe_crypto.Paillier
module Shift_cipher = Spe_crypto.Shift_cipher
module Cipher = Spe_crypto.Cipher

let nat = Alcotest.testable Nat.pp Nat.equal
let st () = State.create ~seed:11 ()

(* --- primality --------------------------------------------------------- *)

let test_small_primes_table () =
  Alcotest.(check int) "pi(1000) = 168" 168 (Array.length Prime.small_primes);
  Alcotest.(check int) "first prime" 2 Prime.small_primes.(0);
  Alcotest.(check int) "last prime below 1000" 997 Prime.small_primes.(167)

let test_is_prime_small_oracle () =
  let s = st () in
  (* Sieve oracle below 10_000 exercises both the trial-division fast
     path and Miller-Rabin (values above 997^2 skip the table; values
     in (1000, 10000) are composite-detected by trial division or MR). *)
  let limit = 10_000 in
  let composite = Array.make (limit + 1) false in
  for i = 2 to limit do
    if not composite.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        composite.(!j) <- true;
        j := !j + i
      done
    end
  done;
  for v = 0 to limit do
    let expected = v >= 2 && not composite.(v) in
    if Prime.is_prime s (Nat.of_int v) <> expected then
      Alcotest.failf "is_prime wrong on %d" v
  done

let test_is_prime_known_large () =
  let s = st () in
  (* 2^89 - 1 is a Mersenne prime; 2^67 - 1 is famously composite. *)
  let mersenne k = Nat.pred (Nat.shift_left Nat.one k) in
  Alcotest.(check bool) "M89 prime" true (Prime.is_prime s (mersenne 89));
  Alcotest.(check bool) "M107 prime" true (Prime.is_prime s (mersenne 107));
  Alcotest.(check bool) "M67 composite" false (Prime.is_prime s (mersenne 67));
  Alcotest.(check bool) "M97 composite" false (Prime.is_prime s (mersenne 97))

let test_is_prime_carmichael () =
  let s = st () in
  (* Carmichael numbers fool Fermat but not Miller-Rabin. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) (string_of_int v) false (Prime.is_prime s (Nat.of_int v)))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 41041; 62745; 162401 ]

let test_random_prime_size_and_primality () =
  let s = st () in
  List.iter
    (fun bits ->
      let p = Prime.random_prime s ~bits in
      Alcotest.(check int) "bit length" bits (Nat.bit_length p);
      Alcotest.(check bool) "is prime" true (Prime.is_prime s p))
    [ 2; 3; 8; 16; 64; 128; 256 ]

(* --- RSA ---------------------------------------------------------------- *)

let test_rsa_roundtrip () =
  let s = st () in
  let kp = Rsa.generate s ~bits:256 in
  for _ = 1 to 50 do
    let m = Nat.random_below s kp.Rsa.public.Rsa.n in
    Alcotest.check nat "dec(enc(m)) = m" m
      (Rsa.decrypt kp.Rsa.secret (Rsa.encrypt kp.Rsa.public m))
  done

let test_rsa_full_size () =
  let s = st () in
  let kp = Rsa.generate s ~bits:1024 in
  Alcotest.(check bool) "modulus ~1024 bits" true
    (Nat.bit_length kp.Rsa.public.Rsa.n >= 1023);
  let m = Nat.of_string "123456789123456789123456789" in
  Alcotest.check nat "1024-bit roundtrip" m
    (Rsa.decrypt kp.Rsa.secret (Rsa.encrypt kp.Rsa.public m));
  Alcotest.(check bool) "ciphertext_bits matches modulus" true
    (Rsa.ciphertext_bits kp.Rsa.public >= 1023)

let test_rsa_plaintext_too_large () =
  let s = st () in
  let kp = Rsa.generate s ~bits:64 in
  Alcotest.check_raises "m >= n rejected"
    (Invalid_argument "Rsa.encrypt: plaintext exceeds modulus")
    (fun () -> ignore (Rsa.encrypt kp.Rsa.public kp.Rsa.public.Rsa.n))

let test_rsa_multiplicative () =
  (* Textbook RSA is multiplicatively homomorphic: E(a)E(b) = E(ab). *)
  let s = st () in
  let kp = Rsa.generate s ~bits:128 in
  let pk = kp.Rsa.public in
  let a = Nat.of_int 1234 and b = Nat.of_int 5678 in
  let prod = Nat.rem (Nat.mul (Rsa.encrypt pk a) (Rsa.encrypt pk b)) pk.Rsa.n in
  Alcotest.check nat "multiplicative" (Nat.of_int (1234 * 5678))
    (Rsa.decrypt kp.Rsa.secret prod)

let test_rsa_crt_equals_plain () =
  let s = st () in
  let kp = Rsa.generate s ~bits:256 in
  Alcotest.(check bool) "generated key carries CRT constants" true
    (kp.Rsa.secret.Rsa.crt <> None);
  let dec_crt = Rsa.decryptor ~crt:true kp.Rsa.secret in
  let dec_plain = Rsa.decryptor ~crt:false kp.Rsa.secret in
  for _ = 1 to 50 do
    let c = Rsa.encrypt kp.Rsa.public (Nat.random_below s kp.Rsa.public.Rsa.n) in
    Alcotest.check nat "CRT decrypt = full-size decrypt" (dec_plain c) (dec_crt c);
    (* Against the naive oracle too: c^d mod n without Montgomery. *)
    Alcotest.check nat "CRT decrypt = mod_pow oracle"
      (Nat.mod_pow ~base:c ~exp:kp.Rsa.secret.Rsa.d ~modulus:kp.Rsa.secret.Rsa.n)
      (dec_crt c)
  done

let test_rsa_key_too_small () =
  let s = st () in
  (* plain_bits up to bits - 1 is fine; bits wraps and must be typed. *)
  ignore (Rsa.generate ~plain_bits:63 s ~bits:64);
  Alcotest.check_raises "plain_bits = key_bits rejected"
    (Rsa.Key_too_small { key_bits = 64; plain_bits = 64 }) (fun () ->
      ignore (Rsa.generate ~plain_bits:64 s ~bits:64));
  Alcotest.check_raises "non-positive plain_bits rejected"
    (Invalid_argument "Rsa.generate: plain_bits must be positive") (fun () ->
      ignore (Rsa.generate ~plain_bits:0 s ~bits:64))

(* --- Paillier ----------------------------------------------------------- *)

let test_paillier_roundtrip () =
  let s = st () in
  let kp = Paillier.generate s ~bits:128 in
  for _ = 1 to 30 do
    let m = Nat.random_below s kp.Paillier.public.Paillier.n in
    Alcotest.check nat "dec(enc(m)) = m" m
      (Paillier.decrypt kp.Paillier.secret (Paillier.encrypt s kp.Paillier.public m))
  done

let test_paillier_probabilistic () =
  let s = st () in
  let kp = Paillier.generate s ~bits:128 in
  let m = Nat.of_int 9 in
  let c1 = Paillier.encrypt s kp.Paillier.public m in
  let c2 = Paillier.encrypt s kp.Paillier.public m in
  Alcotest.(check bool) "two encryptions of the same value differ" false (Nat.equal c1 c2)

let test_paillier_homomorphic_add () =
  let s = st () in
  let kp = Paillier.generate s ~bits:128 in
  let pk = kp.Paillier.public in
  for _ = 1 to 20 do
    let a = State.next_int s 100_000 and b = State.next_int s 100_000 in
    let c = Paillier.add pk (Paillier.encrypt s pk (Nat.of_int a)) (Paillier.encrypt s pk (Nat.of_int b)) in
    Alcotest.check nat "E(a) + E(b) decrypts to a+b" (Nat.of_int (a + b))
      (Paillier.decrypt kp.Paillier.secret c)
  done

let test_paillier_mul_plain () =
  let s = st () in
  let kp = Paillier.generate s ~bits:128 in
  let pk = kp.Paillier.public in
  let c = Paillier.encrypt s pk (Nat.of_int 21) in
  Alcotest.check nat "2 * E(21) decrypts to 42" (Nat.of_int 42)
    (Paillier.decrypt kp.Paillier.secret (Paillier.mul_plain pk c Nat.two))

let test_paillier_crt_equals_plain () =
  let s = st () in
  let kp = Paillier.generate s ~bits:256 in
  Alcotest.(check bool) "generated key carries CRT constants" true
    (kp.Paillier.secret.Paillier.crt <> None);
  let dec_crt = Paillier.decryptor ~crt:true kp.Paillier.secret in
  let dec_plain = Paillier.decryptor ~crt:false kp.Paillier.secret in
  for _ = 1 to 30 do
    let m = Nat.random_below s kp.Paillier.public.Paillier.n in
    let c = Paillier.encrypt s kp.Paillier.public m in
    Alcotest.check nat "CRT decrypt = lambda/mu decrypt" (dec_plain c) (dec_crt c);
    Alcotest.check nat "CRT decrypt recovers m" m (dec_crt c)
  done

let test_paillier_fixed_base_encryptor () =
  let s = st () in
  let kp = Paillier.generate s ~bits:256 in
  let enc = Paillier.encryptor ~fixed_base:true s kp.Paillier.public in
  let dec = Paillier.decryptor kp.Paillier.secret in
  for _ = 1 to 30 do
    let m = Nat.random_below s kp.Paillier.public.Paillier.n in
    Alcotest.check nat "fixed-base enc roundtrips" m (dec (enc m))
  done;
  (* Still probabilistic: the per-call exponent re-randomises. *)
  let m = Nat.of_int 9 in
  Alcotest.(check bool) "two fixed-base encryptions differ" false
    (Nat.equal (enc m) (enc m));
  (* And agrees with the plain square-and-multiply encryptor modulo
     randomness: both decrypt to the same plaintext. *)
  let enc_plain = Paillier.encryptor ~fixed_base:false s kp.Paillier.public in
  Alcotest.check nat "plain encryptor agrees after decryption" m (dec (enc_plain m))

let test_paillier_key_too_small () =
  let s = st () in
  ignore (Paillier.generate ~plain_bits:63 s ~bits:64);
  (* Paillier.Key_too_small is a rebinding of Rsa.Key_too_small, so the
     same exception value matches through either name. *)
  Alcotest.check_raises "plain_bits = key_bits rejected"
    (Paillier.Key_too_small { key_bits = 64; plain_bits = 64 }) (fun () ->
      ignore (Paillier.generate ~plain_bits:64 s ~bits:64));
  Alcotest.(check bool) "rebinding: same exception constructor" true
    (Paillier.Key_too_small { key_bits = 1; plain_bits = 2 }
    = Rsa.Key_too_small { key_bits = 1; plain_bits = 2 })

(* --- shift cipher ------------------------------------------------------- *)

let test_shift_roundtrip () =
  let s = st () in
  for _ = 1 to 50 do
    let period = 2 + State.next_int s 1000 in
    let c = Shift_cipher.random s ~period in
    for _ = 1 to 20 do
      let t = State.next_int s period in
      Alcotest.(check int) "dec(enc(t)) = t" t (Shift_cipher.decrypt c (Shift_cipher.encrypt c t))
    done
  done

let test_shift_follows_within () =
  (* The window test on ciphertexts must agree with the plaintext
     condition t < t' <= t + h whenever no true record lives in the
     last h slots (the paper's premise for inequality (12)). *)
  let s = st () in
  let horizon = 50 and h = 5 in
  let period = horizon + h in
  for _ = 1 to 20 do
    let c = Shift_cipher.random s ~period in
    for t = 0 to horizon - 1 do
      for t' = 0 to horizon - 1 do
        let plain = t' > t && t' <= t + h in
        let ciph =
          Shift_cipher.follows_within c ~h (Shift_cipher.encrypt c t) (Shift_cipher.encrypt c t')
        in
        if plain <> ciph then Alcotest.failf "window mismatch at t=%d t'=%d" t t'
      done
    done
  done

let test_shift_invalid () =
  Alcotest.check_raises "bad period"
    (Invalid_argument "Shift_cipher.create: period must be positive")
    (fun () -> ignore (Shift_cipher.create ~key:0 ~period:0));
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Shift_cipher.create: key out of range")
    (fun () -> ignore (Shift_cipher.create ~key:5 ~period:5))

(* --- cipher facade ------------------------------------------------------ *)

let test_cipher_rsa () =
  let s = st () in
  let c = Cipher.rsa s ~bits:128 in
  List.iter
    (fun m -> Alcotest.(check int) "roundtrip" m (c.Cipher.decrypt_int (c.Cipher.public.Cipher.encrypt_int m)))
    [ 0; 1; 42; 1000; 999_983 ];
  Alcotest.(check bool) "z near modulus size" true (c.Cipher.public.Cipher.ciphertext_bits >= 127)

let test_cipher_paillier () =
  let s = st () in
  let c = Cipher.paillier s ~bits:128 in
  List.iter
    (fun m -> Alcotest.(check int) "roundtrip" m (c.Cipher.decrypt_int (c.Cipher.public.Cipher.encrypt_int m)))
    [ 0; 1; 42; 1000 ];
  Alcotest.(check bool) "z near 2x modulus size" true
    (c.Cipher.public.Cipher.ciphertext_bits >= 255)

let test_cipher_accel_off_roundtrips () =
  (* ~accel:false swaps in the unaccelerated reference pipeline
     (no CRT, no fixed-base, no hoisted contexts); the facade contract
     is unchanged. *)
  let s = st () in
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          Alcotest.(check int) "roundtrip" m
            (c.Cipher.decrypt_int (c.Cipher.public.Cipher.encrypt_int m)))
        [ 0; 1; 42; 999_983 ])
    [ Cipher.rsa ~accel:false s ~bits:128; Cipher.paillier ~accel:false s ~bits:128 ]

let test_cipher_rejects_negative () =
  let s = st () in
  let c = Cipher.rsa s ~bits:64 in
  Alcotest.check_raises "negative plaintext"
    (Invalid_argument "Cipher.encrypt_int: negative plaintext")
    (fun () -> ignore (c.Cipher.public.Cipher.encrypt_int (-1)))

(* --- QCheck properties -------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let s_global = st () in
  let kp = Rsa.generate s_global ~bits:128 in
  let pkp = Paillier.generate s_global ~bits:128 in
  [
    Test.make ~name:"rsa roundtrip on random ints" ~count:100 (int_range 0 1_000_000_000)
      (fun m ->
        let m = Nat.of_int m in
        Nat.equal m (Rsa.decrypt kp.Rsa.secret (Rsa.encrypt kp.Rsa.public m)));
    Test.make ~name:"paillier additive law" ~count:50
      (pair (int_range 0 1_000_000) (int_range 0 1_000_000))
      (fun (a, b) ->
        let pk = pkp.Paillier.public in
        let c =
          Paillier.add pk
            (Paillier.encrypt s_global pk (Nat.of_int a))
            (Paillier.encrypt s_global pk (Nat.of_int b))
        in
        Nat.equal (Nat.of_int (a + b)) (Paillier.decrypt pkp.Paillier.secret c));
    Test.make ~name:"rsa CRT decrypt = plain decrypt" ~count:60 (int_range 0 1_000_000_000)
      (fun m ->
        let c = Rsa.encrypt kp.Rsa.public (Nat.of_int m) in
        Nat.equal
          (Rsa.decryptor ~crt:false kp.Rsa.secret c)
          (Rsa.decryptor ~crt:true kp.Rsa.secret c));
    Test.make ~name:"paillier CRT decrypt = plain decrypt" ~count:40
      (int_range 0 1_000_000_000)
      (fun m ->
        let c = Paillier.encrypt s_global pkp.Paillier.public (Nat.of_int m) in
        Nat.equal
          (Paillier.decryptor ~crt:false pkp.Paillier.secret c)
          (Paillier.decryptor ~crt:true pkp.Paillier.secret c));
    Test.make ~name:"shift cipher preserves gaps" ~count:200
      (triple (int_range 1 500) (int_range 0 10_000) (int_range 0 10_000))
      (fun (key_seed, t1, t2) ->
        let period = 20_000 in
        let c = Shift_cipher.create ~key:(key_seed mod period) ~period in
        let e1 = Shift_cipher.encrypt c t1 and e2 = Shift_cipher.encrypt c t2 in
        (e2 - e1 + period) mod period = (t2 - t1 + period) mod period);
  ]

let () =
  Alcotest.run "spe_crypto"
    [
      ( "prime",
        [
          Alcotest.test_case "small prime table" `Quick test_small_primes_table;
          Alcotest.test_case "sieve oracle" `Quick test_is_prime_small_oracle;
          Alcotest.test_case "known large primes" `Quick test_is_prime_known_large;
          Alcotest.test_case "carmichael numbers" `Quick test_is_prime_carmichael;
          Alcotest.test_case "random prime sizes" `Quick test_random_prime_size_and_primality;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "1024-bit keys" `Slow test_rsa_full_size;
          Alcotest.test_case "oversized plaintext" `Quick test_rsa_plaintext_too_large;
          Alcotest.test_case "multiplicative property" `Quick test_rsa_multiplicative;
          Alcotest.test_case "CRT decrypt equality" `Quick test_rsa_crt_equals_plain;
          Alcotest.test_case "key too small" `Quick test_rsa_key_too_small;
        ] );
      ( "paillier",
        [
          Alcotest.test_case "roundtrip" `Quick test_paillier_roundtrip;
          Alcotest.test_case "probabilistic" `Quick test_paillier_probabilistic;
          Alcotest.test_case "homomorphic add" `Quick test_paillier_homomorphic_add;
          Alcotest.test_case "plaintext multiply" `Quick test_paillier_mul_plain;
          Alcotest.test_case "CRT decrypt equality" `Quick test_paillier_crt_equals_plain;
          Alcotest.test_case "fixed-base encryptor" `Quick test_paillier_fixed_base_encryptor;
          Alcotest.test_case "key too small" `Quick test_paillier_key_too_small;
        ] );
      ( "shift-cipher",
        [
          Alcotest.test_case "roundtrip" `Quick test_shift_roundtrip;
          Alcotest.test_case "window membership" `Quick test_shift_follows_within;
          Alcotest.test_case "invalid params" `Quick test_shift_invalid;
        ] );
      ( "cipher",
        [
          Alcotest.test_case "rsa facade" `Quick test_cipher_rsa;
          Alcotest.test_case "paillier facade" `Quick test_cipher_paillier;
          Alcotest.test_case "accel off" `Quick test_cipher_accel_off_roundtrips;
          Alcotest.test_case "negative plaintext" `Quick test_cipher_rejects_negative;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
