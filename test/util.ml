(* Shared builders for the cross-suite tests.  The random workload
   (Erdős–Rényi graph, planted cascade log, exclusive provider
   partition) and the live-deployment roster were duplicated across
   test_net.ml, test_obs.ml, test_serve.ml and test_delta.ml; they live
   here once, with no behavior change — the bodies are the originals,
   draw for draw. *)

module State = Spe_rng.State
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Session = Spe_mpc.Session
module Wire = Spe_mpc.Wire
module Plan = Spe_core.Plan
module Endpoint = Spe_net.Endpoint
module Transport = Spe_net.Transport
module Schedule = Spe_chaos.Schedule
module Harness = Spe_chaos.Harness
module Job = Spe_serve.Job
module Daemon = Spe_serve.Daemon
module Client = Spe_serve.Client

(* The standard random pipeline workload: ER graph, cascade log with
   planted p = 0.3 influence, exclusive partition across m providers —
   all drawn from one seeded generator. *)
let workload ~seed ~n ~edges ~actions ~m =
  let s = State.create ~seed () in
  let g = Generate.erdos_renyi_gnm s ~n ~m:edges in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log =
    Cascade.generate s planted
      { Cascade.num_actions = actions; seeds_per_action = 2; max_delay = 3 }
  in
  (g, Partition.exclusive s log ~m)

(* Drive a plan on one of the three engines: lowered to a single
   session for sim, stage-by-stage through a transport worker pool
   otherwise. *)
let run_plan ?(workers = 2) engine (plan : _ Plan.t) =
  match engine with
  | `Sim -> Session.run (Plan.to_session plan) ~wire:(Wire.create ())
  | (`Memory | `Socket) as e ->
    List.iter
      (fun (stage : Plan.stage) ->
        ignore
          (match e with
          | `Memory -> Endpoint.run_sessions_memory ~workers stage.Plan.sessions
          | `Socket -> Endpoint.run_sessions_socket ~workers stage.Plan.sessions))
      plan.Plan.stages;
    plan.Plan.result ()

(* --- live deployments ------------------------------------------------------- *)

(* A small links workload: 3 providers like the chaos campaigns, so the
   mesh is a real 4-daemon clique. *)
let links_workload =
  { Schedule.wseed = 97; users = 18; edges = 50; actions = 8; providers = 3 }

(* Start one in-process daemon per party over a temp unix-domain
   roster, run [f client daemons roster], then shut everything down. *)
let with_deployment ?(workload = links_workload) ?(max_sessions = 4) ?(max_queue = 64)
    ?metrics_addr f =
  let graph, logs = Harness.workload_inputs workload in
  let m = Array.length logs in
  let roster = Transport.Socket.temp_unix_addresses ~m:(m + 1) in
  let daemons =
    Array.init (m + 1) (fun party ->
        Daemon.start
          {
            (Daemon.default_config ~party ~roster) with
            Daemon.max_sessions;
            max_queue;
            metrics_addr = (if party = 0 then metrics_addr else None);
            round_timeout = 60.;
            linger = 61.;
            dial_timeout = 15.;
          }
          { Job.graph; logs })
  in
  let client = Client.connect ~retry_for:10. roster.(0) in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      ignore (Client.shutdown_roster ~timeout:15. roster);
      Array.iter Daemon.wait daemons)
    (fun () -> f client daemons roster ~graph ~logs)

let gauge daemons party name =
  match List.assoc_opt name (Daemon.gauges daemons.(party)) with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "gauge %s missing" name)
