(* Tests for the MPC substrate: wire accounting, Protocol 1 modular
   share reconstruction, Protocol 2 integer shares and the Theorem 4.1
   leak classification, and Protocol 3's exact masked division. *)

module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Protocol1 = Spe_mpc.Protocol1
module Protocol2 = Spe_mpc.Protocol2
module Protocol3 = Spe_mpc.Protocol3

let st () = State.create ~seed:61 ()

let providers m = Array.init m (fun k -> Wire.Provider k)

(* --- wire ---------------------------------------------------------------- *)

let test_wire_accounting () =
  let w = Wire.create () in
  Wire.round w (fun () ->
      Wire.send w ~src:Wire.Host ~dst:(Wire.Provider 0) ~bits:100;
      Wire.send w ~src:(Wire.Provider 0) ~dst:(Wire.Provider 1) ~bits:50);
  Wire.round w (fun () -> Wire.send w ~src:(Wire.Provider 1) ~dst:Wire.Host ~bits:8);
  let s = Wire.stats w in
  Alcotest.(check int) "rounds" 2 s.Wire.rounds;
  Alcotest.(check int) "messages" 3 s.Wire.messages;
  Alcotest.(check int) "bits" 158 s.Wire.bits;
  Alcotest.(check int) "transcript length" 3 (List.length (Wire.messages w))

let test_wire_guards () =
  let w = Wire.create () in
  Alcotest.check_raises "send outside round" (Failure "Wire.send: outside a round") (fun () ->
      Wire.send w ~src:Wire.Host ~dst:(Wire.Provider 0) ~bits:1);
  Alcotest.check_raises "nested round" (Failure "Wire.round: nested round") (fun () ->
      Wire.round w (fun () -> Wire.round w (fun () -> ())));
  Wire.round w (fun () ->
      Alcotest.check_raises "self send" (Invalid_argument "Wire.send: self-send") (fun () ->
          Wire.send w ~src:Wire.Host ~dst:Wire.Host ~bits:1))

let test_wire_round_reopens_after_exception () =
  let w = Wire.create () in
  (try Wire.round w (fun () -> failwith "boom") with Failure _ -> ());
  (* The round guard must have been released. *)
  Wire.round w (fun () -> Wire.send w ~src:Wire.Host ~dst:(Wire.Provider 0) ~bits:1);
  Alcotest.(check int) "second round opened" 2 (Wire.stats w).Wire.rounds

let test_bits_for_int_mod () =
  Alcotest.(check int) "mod 2" 1 (Wire.bits_for_int_mod 2);
  Alcotest.(check int) "mod 256" 8 (Wire.bits_for_int_mod 256);
  Alcotest.(check int) "mod 257" 9 (Wire.bits_for_int_mod 257);
  Alcotest.(check int) "mod 2^40" 40 (Wire.bits_for_int_mod (1 lsl 40))

(* --- Protocol 1 ------------------------------------------------------------ *)

let run_p1 ?(modulus = 1 lsl 30) s inputs =
  let w = Wire.create () in
  let m = Array.length inputs in
  let r = Protocol1.run s ~wire:w ~parties:(providers m) ~modulus ~inputs in
  (r, Wire.stats w)

let test_p1_reconstruction () =
  let s = st () in
  let modulus = 1 lsl 30 in
  for _ = 1 to 200 do
    let m = 2 + State.next_int s 5 in
    let len = 1 + State.next_int s 10 in
    let inputs = Array.init m (fun _ -> Array.init len (fun _ -> State.next_int s 1000)) in
    let r, _ = run_p1 ~modulus s inputs in
    for l = 0 to len - 1 do
      let x = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
      let recon = (r.Protocol1.share1.(l) + r.Protocol1.share2.(l)) mod modulus in
      if recon <> x mod modulus then Alcotest.failf "bad reconstruction at %d" l
    done
  done

let test_p1_message_count () =
  let s = st () in
  List.iter
    (fun m ->
      let inputs = Array.init m (fun _ -> [| 5 |]) in
      let _, stats = run_p1 s inputs in
      let expected_messages = (m * (m - 1)) + if m > 2 then m - 2 else 0 in
      Alcotest.(check int) (Printf.sprintf "m=%d messages" m) expected_messages
        stats.Wire.messages;
      Alcotest.(check int)
        (Printf.sprintf "m=%d rounds" m)
        (if m = 2 then 1 else 2)
        stats.Wire.rounds)
    [ 2; 3; 5; 8 ]

let test_p1_share_uniformity () =
  (* share1 of a fixed input must spread over Z_S: crude bucket test. *)
  let s = st () in
  let modulus = 1 lsl 20 in
  let low = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let r, _ = run_p1 ~modulus s [| [| 3 |]; [| 4 |] |] in
    if r.Protocol1.share1.(0) < modulus / 2 then incr low
  done;
  let frac = float_of_int !low /. float_of_int trials in
  Alcotest.(check bool) "share1 roughly uniform" true (abs_float (frac -. 0.5) < 0.05)

let test_p1_validation () =
  let s = st () in
  Alcotest.check_raises "one party" (Invalid_argument "Protocol1.run: need at least two parties")
    (fun () -> ignore (run_p1 s [| [| 1 |] |]));
  Alcotest.check_raises "input out of range"
    (Invalid_argument "Protocol1.run: input out of range") (fun () ->
      ignore (run_p1 ~modulus:10 s [| [| 11 |]; [| 0 |] |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Protocol1.run: input vector length mismatch") (fun () ->
      ignore (run_p1 s [| [| 1 |]; [| 1; 2 |] |]))

(* --- Protocol 2 ------------------------------------------------------------ *)

let run_p2 ?(modulus = 1 lsl 20) ?(bound = 1000) s inputs =
  let w = Wire.create () in
  let m = Array.length inputs in
  let third = if m > 2 then Wire.Provider 2 else Wire.Host in
  let r =
    Protocol2.run s ~wire:w ~parties:(providers m) ~third_party:third ~modulus
      ~input_bound:bound ~inputs
  in
  (r, Wire.stats w)

let test_p2_integer_reconstruction () =
  let s = st () in
  for _ = 1 to 500 do
    let m = 2 + State.next_int s 4 in
    let len = 1 + State.next_int s 8 in
    (* Keep aggregates within the bound. *)
    let inputs = Array.init m (fun _ -> Array.init len (fun _ -> State.next_int s (1000 / m))) in
    let r, _ = run_p2 s inputs in
    for l = 0 to len - 1 do
      let x = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
      (* Exact integer equality: this is the whole point of Protocol 2. *)
      if r.Protocol2.share1.(l) + r.Protocol2.share2.(l) <> x then
        Alcotest.failf "integer shares do not sum to x at %d" l
    done
  done

let test_p2_share1_nonnegative () =
  let s = st () in
  for _ = 1 to 100 do
    let r, _ = run_p2 s [| [| State.next_int s 500 |]; [| State.next_int s 500 |] |] in
    if r.Protocol2.share1.(0) < 0 then Alcotest.fail "share1 must stay in [0, S)"
  done

let test_p2_rounds () =
  let s = st () in
  (* m = 2: P1 round + to-T + verdict = 3 rounds; m > 2 adds the
     collect round. *)
  let _, stats2 = run_p2 s [| [| 1 |]; [| 2 |] |] in
  Alcotest.(check int) "m=2 rounds" 3 stats2.Wire.rounds;
  let _, stats4 = run_p2 s [| [| 1 |]; [| 2 |]; [| 3 |]; [| 4 |] |] in
  Alcotest.(check int) "m=4 rounds" 4 stats4.Wire.rounds

let test_p2_leak_soundness () =
  (* Every reported leak must be a true statement about the aggregate. *)
  let s = st () in
  for _ = 1 to 2000 do
    let a = State.next_int s 500 and b = State.next_int s 500 in
    let x = a + b in
    let r, _ = run_p2 s [| [| a |]; [| b |] |] in
    let check = function
      | Protocol2.Lower_bound v -> if x < v then Alcotest.failf "false lower bound %d on %d" v x
      | Protocol2.Upper_bound v -> if x > v then Alcotest.failf "false upper bound %d on %d" v x
      | Protocol2.Nothing -> ()
    in
    Array.iter check r.Protocol2.views.Protocol2.p2_leaks;
    Array.iter check r.Protocol2.views.Protocol2.p3_leaks
  done

let test_p2_leak_rate_shrinks_with_modulus () =
  (* Theorem 4.1: leak probabilities scale like A/S.  Compare S = 2^12
     against S = 2^20 at A = 1000. *)
  let count_leaks modulus =
    let s = State.create ~seed:77 () in
    let leaks = ref 0 in
    let trials = 3000 in
    for _ = 1 to trials do
      let a = State.next_int s 500 and b = State.next_int s 500 in
      let r, _ = run_p2 ~modulus s [| [| a |]; [| b |] |] in
      let tally = function Protocol2.Nothing -> () | _ -> incr leaks in
      Array.iter tally r.Protocol2.views.Protocol2.p2_leaks;
      Array.iter tally r.Protocol2.views.Protocol2.p3_leaks
    done;
    float_of_int !leaks /. float_of_int trials
  in
  let small = count_leaks (1 lsl 12) and big = count_leaks (1 lsl 20) in
  Alcotest.(check bool)
    (Printf.sprintf "leak rate %.4f at 2^12 vs %.4f at 2^20" small big)
    true
    (big < small /. 10.)

let test_p2_permutation_hides_attribution () =
  (* The batched variant's point: the third party sees the y values in
     a secret order, so it cannot tell which counter a leak belongs to.
     Statistical check: plant one extreme counter among uniform ones
     and verify the position of the largest y is roughly uniform over
     the batch across runs. *)
  let s = st () in
  let len = 8 in
  let runs = 4000 in
  let position_counts = Array.make len 0 in
  for _ = 1 to runs do
    (* Counter 0 is maximal (A), the rest are zero: without the
       permutation its masked value would sit at a fixed position. *)
    let inputs = [| Array.init len (fun l -> if l = 0 then 1000 else 0); Array.make len 0 |] in
    let r, _ = run_p2 ~modulus:(1 lsl 20) ~bound:1000 s inputs in
    (* T's view: the y vector.  Find the position holding the largest
       y; under the secret permutation it should be uniform.  (y is
       dominated by the uniform share noise, so use a proxy the third
       party could actually compute: the position of counter 0's y is
       perm(0), which we can read from the views' ordering by running
       the classification...) Use p3_y directly: all counters look
       alike to T, so test that the *index of the maximum* is not
       concentrated. *)
    let y = r.Protocol2.views.Protocol2.p3_y in
    let best = ref 0 in
    for l = 1 to len - 1 do
      if y.(l) > y.(!best) then best := l
    done;
    position_counts.(!best) <- position_counts.(!best) + 1
  done;
  (* Uniform expectation runs/len with generous slack. *)
  let expected = float_of_int runs /. float_of_int len in
  Array.iteri
    (fun l c ->
      let dev = abs_float (float_of_int c -. expected) /. expected in
      if dev > 0.25 then Alcotest.failf "position %d concentration: %d of %d" l c runs)
    position_counts

let test_p2_aggregate_bound_enforced () =
  let s = st () in
  Alcotest.check_raises "aggregate over bound"
    (Invalid_argument "Protocol2.run: aggregate exceeds input bound") (fun () ->
      ignore (run_p2 ~bound:10 s [| [| 6 |]; [| 6 |] |]))

let test_p2_third_party_distinct () =
  let s = st () in
  let w = Wire.create () in
  Alcotest.check_raises "third party clash"
    (Invalid_argument "Protocol2.run: third party must differ from players 1 and 2") (fun () ->
      ignore
        (Protocol2.run s ~wire:w ~parties:(providers 2) ~third_party:(Wire.Provider 0)
           ~modulus:1000 ~input_bound:10 ~inputs:[| [| 1 |]; [| 2 |] |]))

(* --- Protocol 3 ------------------------------------------------------------ *)

let test_p3_exact_quotient () =
  let s = st () in
  for _ = 1 to 2000 do
    let a1 = State.next_int s 1000 and a2 = 1 + State.next_int s 999 in
    let w = Wire.create () in
    let o =
      Protocol3.run s ~wire:w ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1) ~host:Wire.Host ~a1
        ~a2
    in
    let expected = float_of_int a1 /. float_of_int a2 in
    if abs_float (o.Protocol3.quotient -. expected) > 1e-9 *. expected +. 1e-12 then
      Alcotest.failf "quotient %f <> %f" o.Protocol3.quotient expected
  done

let test_p3_zero_denominator () =
  let s = st () in
  let w = Wire.create () in
  let o =
    Protocol3.run s ~wire:w ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1) ~host:Wire.Host ~a1:7
      ~a2:0
  in
  Alcotest.(check (float 0.)) "q = 0 on zero denominator" 0. o.Protocol3.quotient

let test_p3_host_view_masked () =
  (* The host's view r*a must differ across runs on the same input. *)
  let s = st () in
  let view () =
    let w = Wire.create () in
    let o =
      Protocol3.run s ~wire:w ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1) ~host:Wire.Host ~a1:5
        ~a2:3
    in
    fst o.Protocol3.host_view
  in
  Alcotest.(check bool) "mask varies" true (view () <> view ())

let test_p3_wire () =
  let s = st () in
  let w = Wire.create () in
  let _ =
    Protocol3.run s ~wire:w ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1) ~host:Wire.Host ~a1:1
      ~a2:2
  in
  let stats = Wire.stats w in
  Alcotest.(check int) "1 round" 1 stats.Wire.rounds;
  Alcotest.(check int) "2 messages" 2 stats.Wire.messages;
  Alcotest.(check int) "2 floats" (2 * Wire.float_bits) stats.Wire.bits

let test_divide_shares () =
  let s = st () in
  for _ = 1 to 1000 do
    let num = State.next_int s 1000 and den = 1 + State.next_int s 999 in
    let s1n = State.next_int s 100000 in
    let s2n = num - s1n in
    let s1d = State.next_int s 100000 in
    let s2d = den - s1d in
    let mask = Spe_rng.Dist.mask_pair s in
    let q = Protocol3.divide_shares ~mask ~num:(s1n, s2n) ~den:(s1d, s2d) in
    let expected = float_of_int num /. float_of_int den in
    if abs_float (q -. expected) > 1e-6 *. (expected +. 1.) then
      Alcotest.failf "share division %f <> %f" q expected
  done

let test_divide_shares_zero_den () =
  (* den = 0 must cancel exactly despite the mask. *)
  let s = st () in
  for _ = 1 to 200 do
    let s1d = State.next_int s 100000 in
    let mask = Spe_rng.Dist.mask_pair s in
    let q = Protocol3.divide_shares ~mask ~num:(3, 4) ~den:(s1d, -s1d) in
    Alcotest.(check (float 0.)) "zero denominator detected" 0. q
  done

(* --- message-passing runtime ---------------------------------------------------- *)

module Runtime = Spe_mpc.Runtime
module Protocol1_distributed = Spe_mpc.Protocol1_distributed
module Protocol2_distributed = Spe_mpc.Protocol2_distributed

let test_runtime_routing () =
  let engine = Runtime.create () in
  let received = ref [] in
  Runtime.add_party engine (Wire.Provider 0) (fun ~round ~inbox:_ ->
      if round = 1 then
        [ { Runtime.src = Wire.Provider 0; dst = Wire.Provider 1;
            payload = Runtime.Floats [| 1.5 |] } ]
      else []);
  Runtime.add_party engine (Wire.Provider 1) (fun ~round:_ ~inbox ->
      List.iter
        (fun m -> match m.Runtime.payload with
           | Runtime.Floats f -> received := f.(0) :: !received
           | _ -> ())
        inbox;
      []);
  let w = Wire.create () in
  let rounds = Runtime.run engine ~wire:w ~max_rounds:5 in
  Alcotest.(check int) "one active round" 1 rounds;
  Alcotest.(check (list (float 0.))) "payload delivered" [ 1.5 ] !received;
  Alcotest.(check int) "64 bits charged" 64 (Wire.stats w).Wire.bits

let test_runtime_nontermination_detected () =
  let engine = Runtime.create () in
  (* Two parties ping-ponging forever. *)
  Runtime.add_party engine Wire.Host (fun ~round:_ ~inbox:_ ->
      [ { Runtime.src = Wire.Host; dst = Wire.Provider 0; payload = Runtime.Bits [| true |] } ]);
  Runtime.add_party engine (Wire.Provider 0) (fun ~round:_ ~inbox:_ ->
      [ { Runtime.src = Wire.Provider 0; dst = Wire.Host; payload = Runtime.Bits [| true |] } ]);
  let w = Wire.create () in
  Alcotest.check_raises "runaway protocol" (Failure "Runtime.run: protocol did not terminate")
    (fun () -> ignore (Runtime.run engine ~wire:w ~max_rounds:3))

let test_runtime_rejects_unknown_destination () =
  let engine = Runtime.create () in
  Runtime.add_party engine Wire.Host (fun ~round:_ ~inbox:_ ->
      [ { Runtime.src = Wire.Host; dst = Wire.Provider 9; payload = Runtime.Bits [| true |] } ]);
  let w = Wire.create () in
  Alcotest.check_raises "unknown party"
    (Invalid_argument "Runtime.run: message to unknown party") (fun () ->
      ignore (Runtime.run engine ~wire:w ~max_rounds:3))

let test_runtime_quiescent_round_not_charged () =
  (* A silent group terminates immediately: the quiescence-detection
     round is free, so NR = 0 and the wire is untouched. *)
  let engine = Runtime.create () in
  Runtime.add_party engine Wire.Host (fun ~round:_ ~inbox:_ -> []);
  Runtime.add_party engine (Wire.Provider 0) (fun ~round:_ ~inbox:_ -> []);
  let w = Wire.create () in
  let rounds = Runtime.run engine ~wire:w ~max_rounds:5 in
  Alcotest.(check int) "zero active rounds" 0 rounds;
  let s = Wire.stats w in
  Alcotest.(check int) "no rounds charged" 0 s.Wire.rounds;
  Alcotest.(check int) "no messages charged" 0 s.Wire.messages;
  Alcotest.(check int) "no bits charged" 0 s.Wire.bits

let test_p1_distributed_matches_central () =
  let s = st () in
  for _ = 1 to 50 do
    let m = 2 + State.next_int s 4 in
    let len = 1 + State.next_int s 6 in
    let inputs = Array.init m (fun _ -> Array.init len (fun _ -> State.next_int s 500)) in
    let modulus = 1 lsl 16 in
    let wd = Wire.create () in
    let rd =
      Protocol1_distributed.run s ~wire:wd ~parties:(providers m) ~modulus ~inputs
    in
    (* Same reconstruction... *)
    for l = 0 to len - 1 do
      let x = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
      if (rd.Protocol1.share1.(l) + rd.Protocol1.share2.(l)) mod modulus <> x mod modulus
      then Alcotest.fail "distributed reconstruction broken"
    done;
    (* ...and the same wire shape as the central implementation, up to
       byte rounding of each message. *)
    let wc = Wire.create () in
    let _ = Protocol1.run s ~wire:wc ~parties:(providers m) ~modulus ~inputs in
    let sc = Wire.stats wc and sd = Wire.stats wd in
    Alcotest.(check int) "same rounds" sc.Wire.rounds sd.Wire.rounds;
    Alcotest.(check int) "same message count" sc.Wire.messages sd.Wire.messages;
    if sd.Wire.bits < sc.Wire.bits || sd.Wire.bits > sc.Wire.bits + (8 * sc.Wire.messages)
    then Alcotest.failf "bits diverge: central %d distributed %d" sc.Wire.bits sd.Wire.bits
  done

let test_p2_distributed_matches_central () =
  let s = st () in
  for _ = 1 to 50 do
    let m = 2 + State.next_int s 3 in
    let len = 1 + State.next_int s 5 in
    let bound = 1000 in
    let inputs = Array.init m (fun _ -> Array.init len (fun _ -> State.next_int s (bound / m))) in
    let modulus = 1 lsl 14 in
    let wd = Wire.create () in
    let rd =
      Protocol2_distributed.run s ~wire:wd ~parties:(providers m) ~third_party:Wire.Host
        ~modulus ~input_bound:bound ~inputs
    in
    for l = 0 to len - 1 do
      let x = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
      if rd.Protocol2_distributed.share1.(l) + rd.Protocol2_distributed.share2.(l) <> x then
        Alcotest.failf "distributed integer shares broken at %d" l
    done;
    let wc = Wire.create () in
    let _ =
      Protocol2.run s ~wire:wc ~parties:(providers m) ~third_party:Wire.Host ~modulus
        ~input_bound:bound ~inputs
    in
    let sc = Wire.stats wc and sd = Wire.stats wd in
    Alcotest.(check int) "same rounds" sc.Wire.rounds sd.Wire.rounds;
    Alcotest.(check int) "same message count" sc.Wire.messages sd.Wire.messages
  done

let test_p3_distributed_matches_central () =
  let s = st () in
  for _ = 1 to 100 do
    let a1 = State.next_int s 1000 and a2 = State.next_int s 1000 in
    let wd = Wire.create () in
    let q =
      Spe_mpc.Protocol3_distributed.run s ~wire:wd ~p1:(Wire.Provider 0)
        ~p2:(Wire.Provider 1) ~host:Wire.Host ~a1 ~a2
    in
    let expected = if a2 = 0 then 0. else float_of_int a1 /. float_of_int a2 in
    if abs_float (q -. expected) > 1e-9 *. (expected +. 1.) then
      Alcotest.failf "distributed quotient %f <> %f" q expected;
    let sd = Wire.stats wd in
    Alcotest.(check int) "one round" 1 sd.Wire.rounds;
    Alcotest.(check int) "two messages" 2 sd.Wire.messages;
    Alcotest.(check int) "two floats" (2 * Wire.float_bits) sd.Wire.bits
  done

let test_p2_distributed_rejects_inside_third () =
  let s = st () in
  let w = Wire.create () in
  Alcotest.check_raises "third party inside"
    (Invalid_argument "Protocol2_distributed.make: third party must be outside the sharing parties")
    (fun () ->
      ignore
        (Protocol2_distributed.run s ~wire:w ~parties:(providers 3)
           ~third_party:(Wire.Provider 2) ~modulus:1024 ~input_bound:10
           ~inputs:[| [| 1 |]; [| 2 |]; [| 3 |] |]))

(* --- sessions ----------------------------------------------------------------- *)

module Session = Spe_mpc.Session

(* [sender -> receiver] for [rounds] rounds, one Floats message per
   round; the result is [tag]. *)
let chat_session ~sender ~receiver ~rounds tag =
  let count = ref 0 in
  Session.make
    ~parties:[| sender; receiver |]
    ~programs:
      [|
        (fun ~round ~inbox:_ ->
          if round <= rounds then
            [ { Runtime.src = sender; dst = receiver; payload = Runtime.Floats [| 1. |] } ]
          else []);
        (fun ~round:_ ~inbox -> List.iter (fun _ -> incr count) inbox; []);
      |]
    ~rounds
    ~result:(fun () -> (tag, !count))

let test_session_seq_splices () =
  let a = chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 1) ~rounds:2 "A" in
  let b = chat_session ~sender:(Wire.Provider 1) ~receiver:(Wire.Provider 2) ~rounds:1 "B" in
  let s = Session.seq a b in
  Alcotest.(check int) "rounds add up" 3 s.Session.rounds;
  Alcotest.(check int) "parties united in order" 3 (Array.length s.Session.parties);
  let w = Wire.create () in
  let (ta, ca), (tb, cb) = Session.run s ~wire:w in
  Alcotest.(check (pair string int)) "phase A result" ("A", 2) (ta, ca);
  Alcotest.(check (pair string int)) "phase B result" ("B", 1) (tb, cb);
  let stats = Wire.stats w in
  Alcotest.(check int) "no idle round between phases" 3 stats.Wire.rounds;
  Alcotest.(check int) "all messages charged" 3 stats.Wire.messages

let test_session_seq_rejects_overrun () =
  (* Declared one round, but the program also sends at its finishing
     call — the splice must refuse rather than desynchronise phase B. *)
  let a =
    Session.make
      ~parties:[| Wire.Provider 0; Wire.Provider 1 |]
      ~programs:
        [|
          (fun ~round:_ ~inbox:_ ->
            [ { Runtime.src = Wire.Provider 0; dst = Wire.Provider 1;
                payload = Runtime.Bits [| true |] } ]);
          (fun ~round:_ ~inbox:_ -> []);
        |]
      ~rounds:1
      ~result:(fun () -> ())
  in
  let b = chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 1) ~rounds:1 "B" in
  Alcotest.check_raises "overrun detected"
    (Invalid_argument "Session.seq: first phase overran its declared rounds") (fun () ->
      ignore (Session.run (Session.seq a b) ~wire:(Wire.create ())))

let test_session_seq_rejects_cross_boundary () =
  (* Phase A aims a message at a party that only joins in phase B. *)
  let a =
    Session.make
      ~parties:[| Wire.Provider 0; Wire.Provider 1 |]
      ~programs:
        [|
          (fun ~round ~inbox:_ ->
            if round = 1 then
              [ { Runtime.src = Wire.Provider 0; dst = Wire.Provider 2;
                  payload = Runtime.Bits [| true |] } ]
            else []);
          (fun ~round:_ ~inbox:_ -> []);
        |]
      ~rounds:2
      ~result:(fun () -> ())
  in
  let b = chat_session ~sender:(Wire.Provider 2) ~receiver:(Wire.Provider 0) ~rounds:1 "B" in
  Alcotest.check_raises "phase boundary enforced"
    (Invalid_argument "Session.seq: message across phase boundary") (fun () ->
      ignore (Session.run (Session.seq a b) ~wire:(Wire.create ())))

let test_session_par_interleaves () =
  let a = chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 1) ~rounds:2 "A" in
  let b = chat_session ~sender:(Wire.Provider 2) ~receiver:(Wire.Provider 3) ~rounds:1 "B" in
  let s = Session.par a b in
  Alcotest.(check int) "rounds are the max" 2 s.Session.rounds;
  let w = Wire.create () in
  let (ta, ca), (tb, cb) = Session.run s ~wire:w in
  Alcotest.(check (pair string int)) "left result" ("A", 2) (ta, ca);
  Alcotest.(check (pair string int)) "right result" ("B", 1) (tb, cb);
  Alcotest.(check int) "messages from both sessions" 3 (Wire.stats w).Wire.messages

let test_session_par_rejects_overlap () =
  let a = chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 1) ~rounds:1 "A" in
  let b = chat_session ~sender:(Wire.Provider 1) ~receiver:(Wire.Provider 2) ~rounds:1 "B" in
  Alcotest.check_raises "overlapping parties"
    (Invalid_argument "Session.par: party sets must be disjoint") (fun () ->
      ignore (Session.par a b))

let test_session_run_checks_declared_rounds () =
  let quiet =
    Session.make
      ~parties:[| Wire.Provider 0 |]
      ~programs:[| (fun ~round:_ ~inbox:_ -> []) |]
      ~rounds:2
      ~result:(fun () -> ())
  in
  Alcotest.check_raises "mis-declared round count"
    (Failure "Session.run: declared 2 rounds but executed 0") (fun () ->
      Session.run quiet ~wire:(Wire.create ()))

let test_session_par_labels () =
  let a =
    Session.with_label "A"
      (chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 1) ~rounds:2 "A")
  in
  let b =
    Session.with_label "B"
      (chat_session ~sender:(Wire.Provider 2) ~receiver:(Wire.Provider 3) ~rounds:1 "B")
  in
  Alcotest.(check (list (pair string int)))
    "par keeps both sides' labels"
    [ ("par(A|B)", 2) ]
    (Session.par a b).Session.phases

let test_session_all_multiplexes () =
  (* Overlapping party sets — [par] would reject; [all] owns each
     global round by exactly one component round. *)
  let a =
    Session.with_label "A"
      (chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 1) ~rounds:2 "A")
  in
  let b =
    Session.with_label "B"
      (chat_session ~sender:(Wire.Provider 0) ~receiver:(Wire.Provider 2) ~rounds:1 "B")
  in
  let s = Session.all [ a; b ] in
  Alcotest.(check int) "rounds are the sum" 3 s.Session.rounds;
  Alcotest.(check (list (pair string int)))
    "round-major phase tags"
    [ ("s0:A", 1); ("s1:B", 1); ("s0:A", 1) ]
    s.Session.phases;
  let w = Wire.create () in
  let results = Session.run s ~wire:w in
  Alcotest.(check (array (pair string int)))
    "component results in input order"
    [| ("A", 2); ("B", 1) |]
    results;
  let stats = Wire.stats w in
  Alcotest.(check int) "every global round message-bearing" 3 stats.Wire.rounds;
  Alcotest.(check int) "all component messages delivered" 3 stats.Wire.messages

let test_session_all_rejects_cross_boundary () =
  let a =
    Session.make
      ~parties:[| Wire.Provider 0; Wire.Provider 1 |]
      ~programs:
        [|
          (fun ~round ~inbox:_ ->
            if round = 1 then
              [ { Runtime.src = Wire.Provider 0; dst = Wire.Provider 2;
                  payload = Runtime.Bits [| true |] } ]
            else []);
          (fun ~round:_ ~inbox:_ -> []);
        |]
      ~rounds:1
      ~result:(fun () -> ("A", 0))
  in
  let b = chat_session ~sender:(Wire.Provider 2) ~receiver:(Wire.Provider 0) ~rounds:1 "B" in
  Alcotest.check_raises "session boundary enforced"
    (Invalid_argument "Session.all: message across session boundary") (fun () ->
      ignore (Session.run (Session.all [ a; b ]) ~wire:(Wire.create ())));
  Alcotest.check_raises "empty list rejected"
    (Invalid_argument "Session.all: need at least one session") (fun () ->
      ignore (Session.all ([] : (string * int) Session.t list)))

(* --- codec -------------------------------------------------------------------- *)

module Codec = Spe_mpc.Codec
module Nat = Spe_bignum.Nat

let test_codec_residues () =
  let s = st () in
  for _ = 1 to 100 do
    let modulus = 2 + State.next_int s 1_000_000 in
    let count = State.next_int s 20 in
    let values = Array.init count (fun _ -> State.next_int s modulus) in
    let decoded = Codec.decode_residues ~modulus ~count (Codec.encode_residues ~modulus values) in
    Alcotest.(check (array int)) "round trip" values decoded
  done

let test_codec_sizes_match_wire_formula () =
  (* The Table 1 size formulae use bits_for_int_mod; the byte encoding
     must match after rounding to whole bytes. *)
  List.iter
    (fun modulus ->
      let declared_bits = Wire.bits_for_int_mod modulus in
      let encoded_bits = 8 * Bytes.length (Codec.encode_residues ~modulus [| 0 |]) in
      if encoded_bits < declared_bits || encoded_bits >= declared_bits + 8 then
        Alcotest.failf "modulus %d: declared %d encoded %d" modulus declared_bits encoded_bits)
    [ 2; 3; 255; 256; 257; 65536; 1 lsl 30; 1 lsl 40 ]

let test_codec_floats () =
  let values = [| 0.; -1.5; Float.pi; 1e300; -0.; Float.min_float |] in
  let decoded = Codec.decode_floats ~count:(Array.length values) (Codec.encode_floats values) in
  Array.iteri
    (fun i v ->
      if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float decoded.(i))) then
        Alcotest.fail "float bits changed")
    values;
  Alcotest.(check int) "8 bytes per float" 48 (Bytes.length (Codec.encode_floats values))

let test_codec_nats () =
  let s = st () in
  for _ = 1 to 50 do
    let width_bits = 8 + State.next_int s 512 in
    let values = Array.init 5 (fun _ -> Nat.random_bits s width_bits) in
    let decoded =
      Codec.decode_nats ~width_bits ~count:5 (Codec.encode_nats ~width_bits values)
    in
    Array.iteri
      (fun i v ->
        if not (Nat.equal v decoded.(i)) then Alcotest.fail "nat round trip failed")
      values
  done;
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Codec.encode_nats: value exceeds width") (fun () ->
      ignore (Codec.encode_nats ~width_bits:4 [| Nat.of_int 16 |]))

let test_codec_bitset () =
  let s = st () in
  for _ = 1 to 50 do
    let count = State.next_int s 40 in
    let flags = Array.init count (fun _ -> State.next_bool s) in
    let decoded = Codec.decode_bitset ~count (Codec.encode_bitset flags) in
    Alcotest.(check bool) "round trip" true (flags = decoded)
  done;
  Alcotest.(check int) "one bit per flag, byte padded" 2
    (Bytes.length (Codec.encode_bitset (Array.make 9 true)))

(* --- pack ---------------------------------------------------------------- *)

module Pack = Spe_mpc.Pack

let test_pack_roundtrip () =
  let s = st () in
  for _ = 1 to 50 do
    let slot_bits = 1 + State.next_int s 16 in
    let slots = 1 + State.next_int s (Pack.max_packed_bits / slot_bits) in
    let t = Pack.create ~slots ~slot_bits in
    let q = 1 + State.next_int s 40 in
    let values = Array.init q (fun _ -> State.next_int s (1 lsl slot_bits)) in
    let packed = Pack.pack t values in
    Alcotest.(check int) "chunk count" (Pack.chunks t ~q) (Array.length packed);
    Alcotest.(check bool) "roundtrip" true (Pack.unpack t ~q packed = values)
  done

let test_pack_overflow () =
  let t = Pack.create ~slots:4 ~slot_bits:8 in
  Alcotest.check_raises "value >= 2^slot_bits rejected"
    (Pack.Overflow { index = 2; value = 256; slot_bits = 8 }) (fun () ->
      ignore (Pack.pack t [| 0; 255; 256 |]));
  Alcotest.check_raises "negative value rejected"
    (Pack.Overflow { index = 0; value = -1; slot_bits = 8 }) (fun () ->
      ignore (Pack.pack t [| -1 |]))

let test_pack_bounds () =
  (* spec validation and the native-int ceiling. *)
  Alcotest.check_raises "too wide"
    (Invalid_argument "Pack.create: slots * slot_bits exceeds the 61-bit native-int bound")
    (fun () -> ignore (Pack.create ~slots:8 ~slot_bits:8));
  Alcotest.(check int) "max_slots respects key and native width" 3
    (Pack.max_slots ~key_bits:64 ~slot_bits:20);
  Alcotest.(check int) "max_slots floors at one slot" 1
    (Pack.max_slots ~key_bits:16 ~slot_bits:40);
  let t = Pack.create ~slots:3 ~slot_bits:20 in
  Alcotest.(check int) "plain_bits = slots * slot_bits" 60 (Pack.plain_bits t);
  Alcotest.check_raises "unpack validates chunk count"
    (Invalid_argument "Pack.unpack: chunk count does not match q") (fun () ->
      ignore (Pack.unpack t ~q:7 [| 0 |]))

(* --- QCheck ----------------------------------------------------------------- *)

module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module P4 = Spe_core.Protocol4
module P6 = Spe_core.Protocol6
module Driver_distributed = Spe_core.Driver_distributed
module Shard = Spe_core.Shard
module Plan = Spe_core.Plan

(* A random exclusive-provider workload for the sharded-equivalence
   properties. *)
let shard_workload ~seed ~m =
  let s = State.create ~seed () in
  let g = Generate.erdos_renyi_gnm s ~n:12 ~m:30 in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log =
    Cascade.generate s planted
      { Cascade.num_actions = 6; seeds_per_action = 2; max_delay = 3 }
  in
  (g, Partition.exclusive s log ~m)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sharded links merge to the unsharded result" ~count:25
      (triple small_nat (int_range 2 4) (int_range 1 9))
      (fun (seed, m, shards) ->
        let g, logs = shard_workload ~seed ~m in
        let config = P4.default_config ~h:2 in
        let w_mono = Wire.create () and w_shard = Wire.create () in
        let mono =
          Session.run
            (Driver_distributed.links_exclusive
               (State.create ~seed:(seed + 1) ())
               ~graph:g ~logs config)
            ~wire:w_mono
        in
        let plan =
          Shard.links_exclusive (State.create ~seed:(seed + 1) ()) ~graph:g ~logs ~shards
            config
        in
        let sharded = Session.run (Plan.to_session plan) ~wire:w_shard in
        (* Bit-identical merge, and payload bytes equal to the
           unsharded wire total (rounds/messages grow with k; the MS
           invariant does not). *)
        mono = sharded
        && (Wire.stats w_mono).Wire.bits = (Wire.stats w_shard).Wire.bits);
    Test.make ~name:"sharded scores merge to the unsharded result" ~count:6
      (triple small_nat (int_range 2 3) (int_range 1 8))
      (fun (seed, m, shards) ->
        let g, logs = shard_workload ~seed ~m in
        let config = { P6.default_config with P6.key_bits = 64 } in
        let w_mono = Wire.create () and w_shard = Wire.create () in
        let mono =
          Session.run
            (Driver_distributed.user_scores_exclusive
               (State.create ~seed:(seed + 1) ())
               ~graph:g ~logs ~tau:4 ~modulus:(1 lsl 20) config)
            ~wire:w_mono
        in
        let plan =
          Shard.user_scores_exclusive
            (State.create ~seed:(seed + 1) ())
            ~graph:g ~logs ~tau:4 ~modulus:(1 lsl 20) ~shards config
        in
        let sharded = Session.run (Plan.to_session plan) ~wire:w_shard in
        mono.Driver_distributed.scores = sharded.Driver_distributed.scores
        && mono.Driver_distributed.graphs = sharded.Driver_distributed.graphs
        && (Wire.stats w_mono).Wire.bits = (Wire.stats w_shard).Wire.bits);
    Test.make ~name:"codec residue round trip" ~count:500
      (triple small_nat (int_range 2 (1 lsl 40)) (int_range 0 30))
      (fun (seed, modulus, count) ->
        let s = State.create ~seed () in
        let values = Array.init count (fun _ -> State.next_int s modulus) in
        Codec.decode_residues ~modulus ~count (Codec.encode_residues ~modulus values)
        = values);
    Test.make ~name:"codec float round trip is bit exact" ~count:500
      (list_of_size (Gen.int_range 0 30) float)
      (fun xs ->
        let values = Array.of_list xs in
        let decoded =
          Codec.decode_floats ~count:(Array.length values) (Codec.encode_floats values)
        in
        Array.for_all2
          (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
          values decoded);
    Test.make ~name:"codec nat round trip" ~count:200
      (triple small_nat (int_range 1 400) (int_range 0 8))
      (fun (seed, width_bits, count) ->
        let s = State.create ~seed () in
        let values = Array.init count (fun _ -> Nat.random_bits s width_bits) in
        let decoded =
          Codec.decode_nats ~width_bits ~count (Codec.encode_nats ~width_bits values)
        in
        Array.for_all2 Nat.equal values decoded);
    Test.make ~name:"codec bitset round trip" ~count:500
      (list_of_size (Gen.int_range 0 100) bool)
      (fun flags ->
        let flags = Array.of_list flags in
        Codec.decode_bitset ~count:(Array.length flags) (Codec.encode_bitset flags) = flags);
    Test.make ~name:"pack round trip" ~count:300
      (triple small_nat (int_range 1 20) (int_range 0 60))
      (fun (seed, slot_bits, q) ->
        let s = State.create ~seed () in
        let slots = 1 + State.next_int s (Pack.max_packed_bits / slot_bits) in
        let t = Pack.create ~slots ~slot_bits in
        let values = Array.init q (fun _ -> State.next_int s (1 lsl slot_bits)) in
        q = 0 || Pack.unpack t ~q (Pack.pack t values) = values);
    Test.make ~name:"pack rejects out-of-range slots" ~count:200
      (triple (int_range 1 16) (int_range 0 30) int)
      (fun (slot_bits, index, value) ->
        assume (value < 0 || value lsr slot_bits > 0);
        let t = Pack.create ~slots:1 ~slot_bits in
        let values = Array.make (index + 1) 0 in
        values.(index) <- value;
        try
          ignore (Pack.pack t values);
          false
        with Pack.Overflow { index = i; value = v; _ } -> i = index && v = value);
    Test.make ~name:"protocol1 modular reconstruction" ~count:300
      (pair small_nat (list_of_size (Gen.int_range 2 6) (int_range 0 999)))
      (fun (seed, xs) ->
        List.length xs >= 2
        ==>
        let s = State.create ~seed () in
        let inputs = Array.of_list (List.map (fun x -> [| x |]) xs) in
        let r, _ = run_p1 ~modulus:4096 s inputs in
        let x = List.fold_left ( + ) 0 xs in
        (r.Protocol1.share1.(0) + r.Protocol1.share2.(0)) mod 4096 = x mod 4096);
    Test.make ~name:"protocol2 integer reconstruction" ~count:300
      (triple small_nat (int_range 0 400) (int_range 0 400))
      (fun (seed, a, b) ->
        let s = State.create ~seed () in
        let r, _ = run_p2 s [| [| a |]; [| b |] |] in
        r.Protocol2.share1.(0) + r.Protocol2.share2.(0) = a + b);
    Test.make ~name:"protocol3 masked view hides magnitude ordering" ~count:100
      (pair small_nat (pair (int_range 1 1000) (int_range 1 1000)))
      (fun (seed, (a1, a2)) ->
        let s = State.create ~seed () in
        let w = Wire.create () in
        let o =
          Protocol3.run s ~wire:w ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1) ~host:Wire.Host
            ~a1 ~a2
        in
        (* Both masked values share the mask, so their ratio is exact —
           but each in isolation must be positive and finite. *)
        let m1, m2 = o.Protocol3.host_view in
        m1 >= 0. && m2 > 0. && Float.is_finite m1 && Float.is_finite m2);
  ]

let () =
  Alcotest.run "spe_mpc"
    [
      ( "wire",
        [
          Alcotest.test_case "accounting" `Quick test_wire_accounting;
          Alcotest.test_case "guards" `Quick test_wire_guards;
          Alcotest.test_case "round guard released on raise" `Quick
            test_wire_round_reopens_after_exception;
          Alcotest.test_case "bits_for_int_mod" `Quick test_bits_for_int_mod;
        ] );
      ( "protocol1",
        [
          Alcotest.test_case "reconstruction" `Quick test_p1_reconstruction;
          Alcotest.test_case "message counts" `Quick test_p1_message_count;
          Alcotest.test_case "share uniformity" `Quick test_p1_share_uniformity;
          Alcotest.test_case "validation" `Quick test_p1_validation;
        ] );
      ( "protocol2",
        [
          Alcotest.test_case "integer reconstruction" `Quick test_p2_integer_reconstruction;
          Alcotest.test_case "share1 in range" `Quick test_p2_share1_nonnegative;
          Alcotest.test_case "round counts" `Quick test_p2_rounds;
          Alcotest.test_case "leaks are sound" `Quick test_p2_leak_soundness;
          Alcotest.test_case "leak rate ~ A/S" `Slow test_p2_leak_rate_shrinks_with_modulus;
          Alcotest.test_case "permutation hides attribution" `Slow test_p2_permutation_hides_attribution;
          Alcotest.test_case "aggregate bound" `Quick test_p2_aggregate_bound_enforced;
          Alcotest.test_case "third party distinct" `Quick test_p2_third_party_distinct;
        ] );
      ( "protocol3",
        [
          Alcotest.test_case "exact quotient" `Quick test_p3_exact_quotient;
          Alcotest.test_case "zero denominator" `Quick test_p3_zero_denominator;
          Alcotest.test_case "mask varies" `Quick test_p3_host_view_masked;
          Alcotest.test_case "wire costs" `Quick test_p3_wire;
          Alcotest.test_case "share division" `Quick test_divide_shares;
          Alcotest.test_case "share division zero" `Quick test_divide_shares_zero_den;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "routing" `Quick test_runtime_routing;
          Alcotest.test_case "non-termination" `Quick test_runtime_nontermination_detected;
          Alcotest.test_case "unknown destination" `Quick test_runtime_rejects_unknown_destination;
          Alcotest.test_case "quiescent round not charged" `Quick
            test_runtime_quiescent_round_not_charged;
          Alcotest.test_case "protocol 1 distributed" `Quick test_p1_distributed_matches_central;
          Alcotest.test_case "protocol 2 distributed" `Quick test_p2_distributed_matches_central;
          Alcotest.test_case "protocol 3 distributed" `Quick test_p3_distributed_matches_central;
          Alcotest.test_case "third party placement" `Quick test_p2_distributed_rejects_inside_third;
        ] );
      ( "session",
        [
          Alcotest.test_case "seq splices phases" `Quick test_session_seq_splices;
          Alcotest.test_case "seq rejects overrun" `Quick test_session_seq_rejects_overrun;
          Alcotest.test_case "seq rejects cross-boundary message" `Quick
            test_session_seq_rejects_cross_boundary;
          Alcotest.test_case "par interleaves" `Quick test_session_par_interleaves;
          Alcotest.test_case "par rejects overlap" `Quick test_session_par_rejects_overlap;
          Alcotest.test_case "par preserves phase labels" `Quick test_session_par_labels;
          Alcotest.test_case "all multiplexes overlapping parties" `Quick
            test_session_all_multiplexes;
          Alcotest.test_case "all rejects cross-boundary message" `Quick
            test_session_all_rejects_cross_boundary;
          Alcotest.test_case "run checks declared rounds" `Quick
            test_session_run_checks_declared_rounds;
        ] );
      ( "codec",
        [
          Alcotest.test_case "residues" `Quick test_codec_residues;
          Alcotest.test_case "sizes match wire formula" `Quick test_codec_sizes_match_wire_formula;
          Alcotest.test_case "floats" `Quick test_codec_floats;
          Alcotest.test_case "nats" `Quick test_codec_nats;
          Alcotest.test_case "bitset" `Quick test_codec_bitset;
        ] );
      ( "pack",
        [
          Alcotest.test_case "roundtrip" `Quick test_pack_roundtrip;
          Alcotest.test_case "overflow rejection" `Quick test_pack_overflow;
          Alcotest.test_case "bounds" `Quick test_pack_bounds;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
