(* Epoch-delta recomputation (Delta): the dirty-group path must be
   invisible — bit-identical releases to a full per-epoch recompute on
   every engine — while actually recomputing less. *)

module State = Spe_rng.State
module Generate = Spe_graph.Generate
module Digraph = Spe_graph.Digraph
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Source = Spe_actionlog.Source
module Log = Spe_actionlog.Log
module Stream = Spe_influence.Stream
module Counters = Spe_influence.Counters
module Protocol4 = Spe_core.Protocol4
module Delta = Spe_core.Delta
module Plan = Spe_core.Plan
module Session = Spe_mpc.Session
module Wire = Spe_mpc.Wire
module Endpoint = Spe_net.Endpoint

let streaming_workload = Util.workload

let union_sorted lists = List.sort_uniq compare (List.concat lists)

let run_plan engine (plan : _ Plan.t) = Util.run_plan ~workers:2 engine plan

(* Drive [epochs] epochs of the streaming pipeline: a shared replayable
   source per provider, windowed accumulators over the published pair
   order, dirty sets unioned across providers, one Delta plan per
   epoch.  Returns the releases in epoch order, plus the final provider
   inputs for the plaintext check. *)
let run_epochs ~seed ~mode ~engine ~epochs ~epoch_ticks ~window (g, logs) config =
  let m = Array.length logs in
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  let d =
    Delta.create
      (State.create ~seed:(seed + 1) ())
      ~graph:g ~m ~num_actions ~group_seed:(seed + 2) config
  in
  let pairs = Delta.pairs d in
  let sources =
    Array.mapi
      (fun k l ->
        Source.create
          (State.create ~seed:(seed + 10 + k) ())
          l ~rate:0.5 ~burstiness:0.4 ~jitter:2 ())
      logs
  in
  let streams =
    Array.map
      (fun _ ->
        Stream.create ?window ~num_users:(Digraph.n g) ~num_actions
          ~h:config.Protocol4.h ~pairs ())
      logs
  in
  let last_inputs = ref [||] in
  for e = 0 to epochs - 1 do
    let horizon = (e + 1) * epoch_ticks in
    Array.iteri
      (fun k src ->
        List.iter
          (fun (r : Log.record) ->
            let acc = streams.(k) in
            Stream.advance acc ~now:(max (Stream.now acc) r.Log.time);
            Stream.add acc r)
          (Source.take_until src ~arrival:horizon))
      sources;
    let dirty_users =
      union_sorted (Array.to_list (Array.map Stream.dirty_users streams))
    in
    let dirty_pairs =
      union_sorted (Array.to_list (Array.map Stream.dirty_pairs streams))
    in
    let inputs =
      Array.map
        (fun acc ->
          let c = Stream.snapshot acc in
          { Protocol4.a = c.Counters.a; c = c.Counters.c })
        streams
    in
    Array.iter Stream.clear_dirty streams;
    last_inputs := inputs;
    let plan =
      Delta.epoch_plan d ~mode { Delta.epoch = e; dirty_users; dirty_pairs; inputs }
    in
    let release = run_plan engine plan in
    Alcotest.(check int) "release epoch" e release.Delta.epoch
  done;
  (Delta.releases d, !last_inputs, pairs)

let default_params = (`Seed 331, `Epochs 6, `Ticks 25)

let releases_of ~seed ~mode ~engine ?(epochs = 6) ?(window = Some 6) () =
  let workload = streaming_workload ~seed ~n:18 ~edges:50 ~actions:8 ~m:3 in
  let config = Protocol4.default_config ~h:2 in
  run_epochs ~seed ~mode ~engine ~epochs ~epoch_ticks:25 ~window workload config

let check_bit_identical label (delta : Delta.release list) (full : Delta.release list) =
  Alcotest.(check int) (label ^ ": epoch count") (List.length full) (List.length delta);
  List.iter2
    (fun (d : Delta.release) (f : Delta.release) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: epoch %d digest" label d.Delta.epoch)
        f.Delta.digest d.Delta.digest;
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "%s: epoch %d estimates" label d.Delta.epoch)
        f.Delta.estimates d.Delta.estimates;
      Alcotest.(check bool)
        (Printf.sprintf "%s: epoch %d strengths" label d.Delta.epoch)
        true
        (d.Delta.strengths = f.Delta.strengths))
    delta full

let test_delta_matches_full_sim () =
  List.iter
    (fun seed ->
      let delta, _, _ = releases_of ~seed ~mode:Delta.Delta ~engine:`Sim () in
      let full, _, _ = releases_of ~seed ~mode:Delta.Full ~engine:`Sim () in
      check_bit_identical (Printf.sprintf "seed %d" seed) delta full;
      (* The delta path must actually save work somewhere: with a short
         window over a bursty stream, some epoch leaves most groups
         clean. *)
      let saved =
        List.exists2
          (fun (d : Delta.release) (f : Delta.release) ->
            d.Delta.recomputed < f.Delta.recomputed)
          delta full
      in
      Alcotest.(check bool) "delta recomputes strictly less somewhere" true saved)
    [ 331; 332; 333 ]

let test_delta_matches_full_qcheck () =
  let prop seed =
    let delta, _, _ = releases_of ~seed ~mode:Delta.Delta ~engine:`Sim ~epochs:4 () in
    let full, _, _ = releases_of ~seed ~mode:Delta.Full ~engine:`Sim ~epochs:4 () in
    List.length delta = List.length full
    && List.for_all2
         (fun (d : Delta.release) (f : Delta.release) ->
           d.Delta.digest = f.Delta.digest && d.Delta.estimates = f.Delta.estimates)
         delta full
  in
  let arb = QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 5000) in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:8 ~name:"delta digest = full digest per epoch" arb prop)

let test_engines_bit_identical () =
  let seed = 457 in
  let sim, _, _ = releases_of ~seed ~mode:Delta.Delta ~engine:`Sim ~epochs:4 () in
  List.iter
    (fun (label, engine) ->
      let rs, _, _ = releases_of ~seed ~mode:Delta.Delta ~engine ~epochs:4 () in
      check_bit_identical label rs sim)
    [ ("memory", `Memory); ("socket", `Socket) ]

(* The masked quotients must sit within rounding of the plaintext
   estimates computed from the same windowed inputs. *)
let test_estimates_match_plaintext () =
  let seed = 523 in
  let releases, inputs, pairs = releases_of ~seed ~mode:Delta.Delta ~engine:`Sim () in
  let last = List.nth releases (List.length releases - 1) in
  Array.iteri
    (fun k (i, _) ->
      let den =
        Array.fold_left (fun acc input -> acc + input.Protocol4.a.(i)) 0 inputs
      in
      let num =
        Array.fold_left
          (fun acc input ->
            acc + Array.fold_left ( + ) 0 input.Protocol4.c.(k))
          0 inputs
      in
      let expect = if den = 0 then 0. else float_of_int num /. float_of_int den in
      let got = last.Delta.estimates.(k) in
      (* Masked float shares carry ~1e-4 absolute noise at S = 2^40
         (same envelope as the batch pipeline tests). *)
      if Float.abs (got -. expect) > 1e-3 *. (1. +. Float.abs expect) then
        Alcotest.failf "pair %d: estimate %.12g <> plaintext %.12g" k got expect)
    pairs

let test_empty_epochs_release () =
  (* Run past the end of the stream: late epochs have no arrivals, so
     Delta mode runs only the release stage, and the released bits
     freeze. *)
  let seed = 619 in
  let releases, _, _ =
    releases_of ~seed ~mode:Delta.Delta ~engine:`Sim ~epochs:10 ()
  in
  let full, _, _ = releases_of ~seed ~mode:Delta.Full ~engine:`Sim ~epochs:10 () in
  check_bit_identical "empty epochs" releases full;
  let last_two =
    match List.rev releases with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "need at least two epochs"
  in
  let a, b = last_two in
  Alcotest.(check int) "stream drained: digest frozen" b.Delta.digest a.Delta.digest

let test_unwindowed_stream_delta () =
  (* window = None: nothing expires, dirty sets still shrink epochs. *)
  let seed = 733 in
  let delta, _, _ = releases_of ~seed ~mode:Delta.Delta ~engine:`Sim ~window:None () in
  let full, _, _ = releases_of ~seed ~mode:Delta.Full ~engine:`Sim ~window:None () in
  check_bit_identical "unwindowed" delta full

let test_epoch_plan_validates () =
  let g = Generate.erdos_renyi_gnm (State.create ~seed:7 ()) ~n:6 ~m:10 in
  let config = Protocol4.default_config ~h:1 in
  let d =
    Delta.create (State.create ~seed:8 ()) ~graph:g ~m:2 ~num_actions:4 ~group_seed:9
      config
  in
  let input () =
    { Protocol4.a = Array.make 6 0;
      c = Array.make_matrix (Array.length (Delta.pairs d)) 1 0 }
  in
  Alcotest.check_raises "non-consecutive epoch"
    (Invalid_argument "Delta.epoch_stages: epochs must be consecutive from 0") (fun () ->
      ignore
        (Delta.epoch_plan d ~mode:Delta.Delta
           { Delta.epoch = 3; dirty_users = []; dirty_pairs = []; inputs = [| input (); input () |] }))

let () =
  ignore default_params;
  Alcotest.run "spe_delta"
    [
      ( "delta",
        [
          Alcotest.test_case "delta = full (sim)" `Quick test_delta_matches_full_sim;
          Alcotest.test_case "delta = full (qcheck)" `Quick test_delta_matches_full_qcheck;
          Alcotest.test_case "engines bit-identical" `Quick test_engines_bit_identical;
          Alcotest.test_case "estimates match plaintext" `Quick
            test_estimates_match_plaintext;
          Alcotest.test_case "empty epochs still release" `Quick test_empty_epochs_release;
          Alcotest.test_case "unwindowed delta" `Quick test_unwindowed_stream_delta;
          Alcotest.test_case "epoch validation" `Quick test_epoch_plan_validates;
        ] );
    ]
