(* Tests for the bignum substrate: oracle tests against native int
   arithmetic on small values, algebraic laws on large random values,
   division invariants (Knuth D), string round-trips, and known
   number-theoretic identities. *)

module Nat = Spe_bignum.Nat
module Bigint = Spe_bignum.Bigint
module State = Spe_rng.State

let nat = Alcotest.testable Nat.pp Nat.equal
let bigint = Alcotest.testable Bigint.pp Bigint.equal

let st () = State.create ~seed:7 ()

(* Random Nat with the given approximate number of bits. *)
let rand_nat st bits = Nat.random_bits st bits

(* --- basic construction ---------------------------------------------- *)

let test_of_to_int () =
  List.iter
    (fun x ->
      Alcotest.(check (option int)) (string_of_int x) (Some x) (Nat.to_int (Nat.of_int x)))
    [ 0; 1; 2; 42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31; max_int; max_int - 1 ]

let test_of_int_negative () =
  Alcotest.check_raises "negative rejected" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_to_int_overflow () =
  let big = Nat.mul (Nat.of_int max_int) (Nat.of_int 2) in
  Alcotest.(check (option int)) "too big" None (Nat.to_int big)

let test_string_roundtrip_known () =
  List.iter
    (fun s -> Alcotest.(check string) s s Nat.(to_string (of_string s)))
    [
      "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890";
      "340282366920938463463374607431768211456" (* 2^128 *);
    ]

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s Nat.(to_hex (of_hex s)))
    [ "0"; "1"; "ff"; "deadbeef"; "123456789abcdef0123456789abcdef" ]

let test_hex_decimal_agree () =
  Alcotest.check nat "0x100 = 256" (Nat.of_int 256) (Nat.of_hex "100");
  Alcotest.check nat "2^64" (Nat.of_string "18446744073709551616") (Nat.of_hex "10000000000000000")

(* --- arithmetic oracle (values fit in int) ---------------------------- *)

let test_small_oracle () =
  let s = st () in
  for _ = 1 to 2000 do
    let a = State.next_int s (1 lsl 30) and b = State.next_int s (1 lsl 30) in
    let na = Nat.of_int a and nb = Nat.of_int b in
    Alcotest.(check (option int)) "add" (Some (a + b)) (Nat.to_int (Nat.add na nb));
    Alcotest.(check (option int)) "mul" (Some (a * b)) (Nat.to_int (Nat.mul na nb));
    let hi = max a b and lo = min a b in
    Alcotest.(check (option int)) "sub" (Some (hi - lo))
      (Nat.to_int (Nat.sub (Nat.of_int hi) (Nat.of_int lo)));
    if b > 0 then begin
      let q, r = Nat.divmod na nb in
      Alcotest.(check (option int)) "div" (Some (a / b)) (Nat.to_int q);
      Alcotest.(check (option int)) "rem" (Some (a mod b)) (Nat.to_int r)
    end
  done

let test_sub_negative_raises () =
  Alcotest.check_raises "1 - 2 rejected" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub Nat.one Nat.two))

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

(* --- algebraic laws on large values ----------------------------------- *)

let test_mul_karatsuba_matches_schoolbook () =
  (* Cross the karatsuba threshold: multiply values of ~ 40 limbs. *)
  let s = st () in
  for _ = 1 to 20 do
    let a = rand_nat s 1200 and b = rand_nat s 1200 in
    (* (a + b)^2 = a^2 + 2ab + b^2 exercises both paths consistently. *)
    let lhs = Nat.mul (Nat.add a b) (Nat.add a b) in
    let rhs =
      Nat.add (Nat.mul a a) (Nat.add (Nat.mul Nat.two (Nat.mul a b)) (Nat.mul b b))
    in
    Alcotest.check nat "binomial identity" lhs rhs
  done

let test_divmod_reconstruction () =
  let s = st () in
  for _ = 1 to 200 do
    let a = rand_nat s 700 in
    let b = Nat.succ (rand_nat s 300) in
    let q, r = Nat.divmod a b in
    Alcotest.check nat "a = q*b + r" a (Nat.add (Nat.mul q b) r);
    Alcotest.(check bool) "r < b" true (Nat.compare r b < 0)
  done

let test_divmod_edge_shapes () =
  (* Divisors engineered to stress the qhat correction path: top limb
     just below a power of two, repeated max limbs. *)
  let b30 = Nat.pred (Nat.shift_left Nat.one 30) in
  let pathological =
    [
      (Nat.shift_left Nat.one 300, Nat.pred (Nat.shift_left Nat.one 150));
      (Nat.pred (Nat.shift_left Nat.one 240), Nat.succ (Nat.shift_left Nat.one 120));
      (Nat.mul b30 (Nat.shift_left b30 60), Nat.succ (Nat.shift_left b30 30));
      (Nat.shift_left Nat.one 600, Nat.succ (Nat.shift_left Nat.one 300));
    ]
  in
  List.iter
    (fun (a, b) ->
      let q, r = Nat.divmod a b in
      Alcotest.check nat "a = q*b + r" a (Nat.add (Nat.mul q b) r);
      Alcotest.(check bool) "r < b" true (Nat.compare r b < 0))
    pathological

let test_shift_roundtrip () =
  let s = st () in
  for _ = 1 to 100 do
    let a = rand_nat s 200 in
    let k = State.next_int s 100 in
    Alcotest.check nat "shift round trip" a (Nat.shift_right (Nat.shift_left a k) k);
    Alcotest.check nat "shift_left = mul 2^k"
      (Nat.shift_left a k)
      (Nat.mul a (Nat.shift_left Nat.one k))
  done

let test_bit_length () =
  Alcotest.(check int) "bits of 0" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check int) "bits of 1" 1 (Nat.bit_length Nat.one);
  Alcotest.(check int) "bits of 255" 8 (Nat.bit_length (Nat.of_int 255));
  Alcotest.(check int) "bits of 256" 9 (Nat.bit_length (Nat.of_int 256));
  Alcotest.(check int) "bits of 2^100" 101 (Nat.bit_length (Nat.shift_left Nat.one 100))

let test_test_bit () =
  let v = Nat.of_int 0b1011 in
  Alcotest.(check bool) "bit 0" true (Nat.test_bit v 0);
  Alcotest.(check bool) "bit 1" true (Nat.test_bit v 1);
  Alcotest.(check bool) "bit 2" false (Nat.test_bit v 2);
  Alcotest.(check bool) "bit 3" true (Nat.test_bit v 3);
  Alcotest.(check bool) "bit 100" false (Nat.test_bit v 100)

let test_gcd () =
  let check_int a b =
    let rec g x y = if y = 0 then x else g y (x mod y) in
    Alcotest.(check (option int))
      (Printf.sprintf "gcd %d %d" a b)
      (Some (g a b))
      (Nat.to_int (Nat.gcd (Nat.of_int a) (Nat.of_int b)))
  in
  check_int 12 18;
  check_int 17 5;
  check_int 0 9;
  check_int 100 0;
  check_int 1_000_000 999_983

let test_mod_pow_fermat () =
  (* Fermat: a^(p-1) = 1 mod p for prime p and a not divisible by p. *)
  let p = Nat.of_string "1000000007" in
  let pm1 = Nat.pred p in
  List.iter
    (fun a ->
      Alcotest.check nat "fermat" Nat.one
        (Nat.mod_pow ~base:(Nat.of_int a) ~exp:pm1 ~modulus:p))
    [ 2; 3; 65537; 999999999 ]

let test_mod_pow_oracle () =
  let rec int_pow_mod b e m = if e = 0 then 1 mod m else
    let h = int_pow_mod b (e / 2) m in
    let h2 = h * h mod m in
    if e land 1 = 1 then h2 * b mod m else h2
  in
  let s = st () in
  for _ = 1 to 500 do
    let b = State.next_int s 30_000 and e = State.next_int s 1000 in
    let m = 1 + State.next_int s 30_000 in
    Alcotest.(check (option int))
      (Printf.sprintf "%d^%d mod %d" b e m)
      (Some (int_pow_mod b e m))
      (Nat.to_int (Nat.mod_pow ~base:(Nat.of_int b) ~exp:(Nat.of_int e) ~modulus:(Nat.of_int m)))
  done

let test_mod_pow_mod_one () =
  Alcotest.check nat "x^y mod 1 = 0" Nat.zero
    (Nat.mod_pow ~base:(Nat.of_int 5) ~exp:(Nat.of_int 3) ~modulus:Nat.one)

let test_random_below () =
  let s = st () in
  let bound = Nat.of_string "123456789012345678901234567890" in
  for _ = 1 to 200 do
    let v = Nat.random_below s bound in
    Alcotest.(check bool) "below bound" true (Nat.compare v bound < 0)
  done

let test_random_bits_exact () =
  let s = st () in
  for k = 1 to 100 do
    Alcotest.(check int) "exact bit length" k (Nat.bit_length (Nat.random_bits_exact s k))
  done

(* --- sqrt / lcm / pow ---------------------------------------------------- *)

let test_isqrt_small_oracle () =
  for v = 0 to 10_000 do
    let r = Nat.to_int_exn (Nat.isqrt (Nat.of_int v)) in
    if r * r > v || (r + 1) * (r + 1) <= v then Alcotest.failf "isqrt wrong at %d: %d" v r
  done

let test_isqrt_large () =
  let s = st () in
  for _ = 1 to 100 do
    let r = rand_nat s 300 in
    let n = Nat.mul r r in
    Alcotest.check nat "sqrt of perfect square" r (Nat.isqrt n);
    Alcotest.(check bool) "is_square" true (Nat.is_square n);
    (* n + 1 is not a square (for r >= 1). *)
    if not (Nat.is_zero r) then
      Alcotest.(check bool) "off-by-one not square" false (Nat.is_square (Nat.succ n))
  done

let test_lcm () =
  let check a b expected =
    Alcotest.(check (option int)) (Printf.sprintf "lcm %d %d" a b) (Some expected)
      (Nat.to_int (Nat.lcm (Nat.of_int a) (Nat.of_int b)))
  in
  check 4 6 12;
  check 7 5 35;
  check 0 9 0;
  check 12 12 12

let test_pow () =
  Alcotest.check nat "2^10" (Nat.of_int 1024) (Nat.pow Nat.two 10);
  Alcotest.check nat "x^0" Nat.one (Nat.pow (Nat.of_int 99) 0);
  Alcotest.check nat "0^0 = 1 (convention)" Nat.one (Nat.pow Nat.zero 0);
  Alcotest.check nat "10^30"
    (Nat.of_string "1000000000000000000000000000000")
    (Nat.pow (Nat.of_int 10) 30)

(* --- Montgomery --------------------------------------------------------- *)

module Montgomery = Spe_bignum.Montgomery

let test_montgomery_vs_mod_pow () =
  let s = st () in
  for _ = 1 to 300 do
    let m = Nat.random_bits_exact s (8 + State.next_int s 200) in
    let m = if Nat.is_even m then Nat.succ m else m in
    let ctx = Montgomery.create m in
    let b = Nat.random_below s m and e = Nat.random_bits s 48 in
    Alcotest.check nat "pow agrees with mod_pow"
      (Nat.mod_pow ~base:b ~exp:e ~modulus:m)
      (Montgomery.pow ctx ~base:b ~exp:e)
  done

let test_montgomery_roundtrip () =
  let s = st () in
  let m = Nat.of_string "1000000000000000003" in
  let ctx = Montgomery.create m in
  for _ = 1 to 200 do
    let x = Nat.random_below s m in
    Alcotest.check nat "of_mont (to_mont x) = x" x (Montgomery.of_mont ctx (Montgomery.to_mont ctx x))
  done

let test_montgomery_mul () =
  let s = st () in
  let m = Nat.of_string "987654321987654321987654321987" in
  let ctx = Montgomery.create m in
  for _ = 1 to 200 do
    let a = Nat.random_below s m and b = Nat.random_below s m in
    let got =
      Montgomery.of_mont ctx
        (Montgomery.mul ctx (Montgomery.to_mont ctx a) (Montgomery.to_mont ctx b))
    in
    Alcotest.check nat "mont mul = plain mul mod m" (Nat.rem (Nat.mul a b) m) got
  done

let test_montgomery_edge_exponents () =
  let m = Nat.of_int 101 in
  let ctx = Montgomery.create m in
  Alcotest.check nat "x^0 = 1" Nat.one (Montgomery.pow ctx ~base:(Nat.of_int 7) ~exp:Nat.zero);
  Alcotest.check nat "x^1 = x" (Nat.of_int 7) (Montgomery.pow ctx ~base:(Nat.of_int 7) ~exp:Nat.one);
  Alcotest.check nat "0^e = 0" Nat.zero (Montgomery.pow ctx ~base:Nat.zero ~exp:(Nat.of_int 5));
  Alcotest.check nat "fermat" Nat.one (Montgomery.pow ctx ~base:(Nat.of_int 13) ~exp:(Nat.of_int 100))

let test_montgomery_rejects_even () =
  Alcotest.check_raises "even modulus"
    (Invalid_argument "Montgomery.create: modulus must be odd and >= 3")
    (fun () -> ignore (Montgomery.create (Nat.of_int 100)))

(* --- Fixed-base windows -------------------------------------------------- *)

module Fixed_base = Spe_bignum.Fixed_base

let test_fixed_base_vs_montgomery () =
  let s = st () in
  for _ = 1 to 50 do
    let m = Nat.random_bits_exact s (16 + State.next_int s 150) in
    let m = if Nat.is_even m then Nat.succ m else m in
    let ctx = Montgomery.create m in
    let base = Nat.random_below s m in
    let max_exp_bits = 1 + State.next_int s 80 in
    let t = Fixed_base.create ctx ~base ~max_exp_bits in
    for _ = 1 to 5 do
      let e = Nat.random_bits s max_exp_bits in
      Alcotest.check nat "fixed-base pow = square-and-multiply pow"
        (Montgomery.pow ctx ~base ~exp:e)
        (Fixed_base.pow t e)
    done
  done

let test_fixed_base_windows_agree () =
  (* Every window width walks the same digits of the same exponent. *)
  let s = st () in
  let m = Nat.of_string "987654321987654321987654321987" in
  let ctx = Montgomery.create m in
  let base = Nat.random_below s m in
  let e = Nat.random_bits s 64 in
  let expect = Montgomery.pow ctx ~base ~exp:e in
  List.iter
    (fun window ->
      let t = Fixed_base.create ~window ctx ~base ~max_exp_bits:64 in
      Alcotest.check nat (Printf.sprintf "window %d" window) expect (Fixed_base.pow t e))
    [ 1; 2; 3; 4; 5; 8 ]

let test_fixed_base_edges () =
  let m = Nat.of_int 101 in
  let ctx = Montgomery.create m in
  let t = Fixed_base.create ctx ~base:(Nat.of_int 7) ~max_exp_bits:16 in
  Alcotest.check nat "x^0 = 1" Nat.one (Fixed_base.pow t Nat.zero);
  Alcotest.check nat "x^1 = x" (Nat.of_int 7) (Fixed_base.pow t Nat.one);
  Alcotest.check nat "fermat" Nat.one (Fixed_base.pow t (Nat.of_int 100));
  Alcotest.check_raises "exponent wider than table"
    (Invalid_argument "Fixed_base.pow: exponent exceeds table") (fun () ->
      ignore (Fixed_base.pow t (Nat.shift_left Nat.one 16)));
  Alcotest.check_raises "window out of range"
    (Invalid_argument "Fixed_base.create: window must be in [1, 8]") (fun () ->
      ignore (Fixed_base.create ~window:9 ctx ~base:(Nat.of_int 7) ~max_exp_bits:16))

(* --- Bigint ------------------------------------------------------------ *)

let test_bigint_oracle () =
  let s = st () in
  for _ = 1 to 2000 do
    let a = State.next_int s 2_000_000 - 1_000_000 in
    let b = State.next_int s 2_000_000 - 1_000_000 in
    let ba = Bigint.of_int a and bb = Bigint.of_int b in
    Alcotest.(check (option int)) "add" (Some (a + b)) (Bigint.to_int (Bigint.add ba bb));
    Alcotest.(check (option int)) "sub" (Some (a - b)) (Bigint.to_int (Bigint.sub ba bb));
    Alcotest.(check (option int)) "mul" (Some (a * b)) (Bigint.to_int (Bigint.mul ba bb));
    if b <> 0 then begin
      let q, r = Bigint.divmod ba bb in
      (* OCaml's (/) and (mod) are truncated like ours. *)
      Alcotest.(check (option int)) "div" (Some (a / b)) (Bigint.to_int q);
      Alcotest.(check (option int)) "rem" (Some (a mod b)) (Bigint.to_int r);
      let e = Bigint.erem ba bb in
      (match Bigint.to_int e with
      | Some ev -> if ev < 0 || ev >= abs b then Alcotest.fail "erem out of [0,|b|)"
      | None -> Alcotest.fail "erem overflow")
    end
  done

let test_bigint_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s Bigint.(to_string (of_string s)))
    [ "0"; "-1"; "12345678901234567890"; "-98765432109876543210" ]

let test_bigint_neg_abs () =
  let v = Bigint.of_int (-5) in
  Alcotest.check bigint "neg" (Bigint.of_int 5) (Bigint.neg v);
  Alcotest.check bigint "abs" (Bigint.of_int 5) (Bigint.abs v);
  Alcotest.check bigint "neg zero is zero" Bigint.zero (Bigint.neg Bigint.zero);
  Alcotest.(check int) "sign of neg" (-1) (Bigint.sign v)

let test_egcd () =
  let s = st () in
  for _ = 1 to 500 do
    let a = State.next_int s 1_000_000 - 500_000 in
    let b = State.next_int s 1_000_000 - 500_000 in
    let ba = Bigint.of_int a and bb = Bigint.of_int b in
    let g, u, v = Bigint.egcd ba bb in
    Alcotest.check bigint "bezout" g Bigint.(add (mul u ba) (mul v bb));
    Alcotest.(check bool) "g >= 0" true (Bigint.sign g >= 0)
  done

let test_mod_inv () =
  let m = Bigint.of_int 1_000_000_007 in
  let s = st () in
  for _ = 1 to 200 do
    let a = Bigint.of_int (1 + State.next_int s 1_000_000_006) in
    match Bigint.mod_inv a m with
    | None -> Alcotest.fail "inverse must exist modulo a prime"
    | Some inv ->
      Alcotest.check bigint "a * a^-1 = 1 (mod m)" Bigint.one
        (Bigint.erem (Bigint.mul a inv) m)
  done;
  Alcotest.(check bool) "non-coprime has no inverse" true
    (Bigint.mod_inv (Bigint.of_int 6) (Bigint.of_int 9) = None)

let test_bigint_mod_pow () =
  let m = Bigint.of_int 97 in
  Alcotest.check bigint "(-2)^3 mod 97 = 89" (Bigint.of_int 89)
    (Bigint.mod_pow ~base:(Bigint.of_int (-2)) ~exp:(Nat.of_int 3) ~modulus:m)

(* --- QCheck properties ------------------------------------------------- *)

let gen_nat_bits bits =
  QCheck.Gen.(map (fun seed -> Nat.random_bits (State.create ~seed ()) bits) nat)

let arb_nat bits = QCheck.make ~print:Nat.to_string (gen_nat_bits bits)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"add commutative" ~count:300 (pair (arb_nat 400) (arb_nat 400))
      (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a));
    Test.make ~name:"mul commutative" ~count:200 (pair (arb_nat 400) (arb_nat 400))
      (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a));
    Test.make ~name:"mul distributes over add" ~count:200
      (triple (arb_nat 300) (arb_nat 300) (arb_nat 300))
      (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    Test.make ~name:"add then sub round-trips" ~count:300 (pair (arb_nat 400) (arb_nat 400))
      (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b));
    Test.make ~name:"divmod reconstruction" ~count:300 (pair (arb_nat 500) (arb_nat 200))
      (fun (a, b) ->
        let b = Nat.succ b in
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    Test.make ~name:"decimal round-trip" ~count:200 (arb_nat 500)
      (fun a -> Nat.equal a (Nat.of_string (Nat.to_string a)));
    Test.make ~name:"hex round-trip" ~count:200 (arb_nat 500)
      (fun a -> Nat.equal a (Nat.of_hex (Nat.to_hex a)));
    Test.make ~name:"gcd divides both" ~count:100 (pair (arb_nat 200) (arb_nat 200))
      (fun (a, b) ->
        let g = Nat.gcd a b in
        if Nat.is_zero g then Nat.is_zero a && Nat.is_zero b
        else Nat.is_zero (Nat.rem a g) && Nat.is_zero (Nat.rem b g));
    Test.make ~name:"mod_pow multiplicative in base" ~count:50
      (triple (arb_nat 100) (arb_nat 100) (arb_nat 64))
      (fun (a, b, m) ->
        let m = Nat.succ m in
        let e = Nat.of_int 17 in
        Nat.equal
          (Nat.mod_pow ~base:(Nat.mul a b) ~exp:e ~modulus:m)
          (Nat.rem
             (Nat.mul (Nat.mod_pow ~base:a ~exp:e ~modulus:m)
                (Nat.mod_pow ~base:b ~exp:e ~modulus:m))
             m));
    Test.make ~name:"bigint add/sub inverse" ~count:300
      (pair (pair small_nat (arb_nat 300)) (arb_nat 300))
      (fun ((flip, a), b) ->
        let a = Bigint.of_nat a and b = Bigint.of_nat b in
        let a = if flip mod 2 = 0 then a else Bigint.neg a in
        Bigint.equal a (Bigint.sub (Bigint.add a b) b));
    Test.make ~name:"fixed-base pow = montgomery pow" ~count:60
      (triple (arb_nat 160) (arb_nat 160) (arb_nat 72))
      (fun (m, base, e) ->
        (* 2(m + 1) + 1: odd and >= 3 for every generated m. *)
        let m = Nat.succ (Nat.mul (Nat.succ m) (Nat.of_int 2)) in
        let ctx = Spe_bignum.Montgomery.create m in
        let base = Nat.rem base m in
        let t = Spe_bignum.Fixed_base.create ctx ~base ~max_exp_bits:72 in
        Nat.equal
          (Spe_bignum.Montgomery.pow ctx ~base ~exp:e)
          (Spe_bignum.Fixed_base.pow t e));
  ]

let () =
  Alcotest.run "spe_bignum"
    [
      ( "construction",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "decimal strings" `Quick test_string_roundtrip_known;
          Alcotest.test_case "hex strings" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex/decimal agree" `Quick test_hex_decimal_agree;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "small-value oracle" `Quick test_small_oracle;
          Alcotest.test_case "sub negative raises" `Quick test_sub_negative_raises;
          Alcotest.test_case "div by zero" `Quick test_divmod_by_zero;
          Alcotest.test_case "karatsuba binomial" `Quick test_mul_karatsuba_matches_schoolbook;
          Alcotest.test_case "divmod reconstruction" `Quick test_divmod_reconstruction;
          Alcotest.test_case "divmod pathological" `Quick test_divmod_edge_shapes;
          Alcotest.test_case "shifts" `Quick test_shift_roundtrip;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "test_bit" `Quick test_test_bit;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "mod_pow fermat" `Quick test_mod_pow_fermat;
          Alcotest.test_case "mod_pow oracle" `Quick test_mod_pow_oracle;
          Alcotest.test_case "mod_pow mod 1" `Quick test_mod_pow_mod_one;
          Alcotest.test_case "random_below" `Quick test_random_below;
          Alcotest.test_case "random_bits_exact" `Quick test_random_bits_exact;
        ] );
      ( "sqrt-lcm-pow",
        [
          Alcotest.test_case "isqrt oracle" `Quick test_isqrt_small_oracle;
          Alcotest.test_case "isqrt large" `Quick test_isqrt_large;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
        ] );
      ( "montgomery",
        [
          Alcotest.test_case "pow vs mod_pow" `Quick test_montgomery_vs_mod_pow;
          Alcotest.test_case "form round trip" `Quick test_montgomery_roundtrip;
          Alcotest.test_case "multiplication" `Quick test_montgomery_mul;
          Alcotest.test_case "edge exponents" `Quick test_montgomery_edge_exponents;
          Alcotest.test_case "rejects even modulus" `Quick test_montgomery_rejects_even;
        ] );
      ( "fixed-base",
        [
          Alcotest.test_case "vs square-and-multiply" `Quick test_fixed_base_vs_montgomery;
          Alcotest.test_case "all window widths" `Quick test_fixed_base_windows_agree;
          Alcotest.test_case "edges and validation" `Quick test_fixed_base_edges;
        ] );
      ( "bigint",
        [
          Alcotest.test_case "int oracle" `Quick test_bigint_oracle;
          Alcotest.test_case "strings" `Quick test_bigint_string;
          Alcotest.test_case "neg/abs/sign" `Quick test_bigint_neg_abs;
          Alcotest.test_case "egcd bezout" `Quick test_egcd;
          Alcotest.test_case "mod_inv" `Quick test_mod_inv;
          Alcotest.test_case "mod_pow signed base" `Quick test_bigint_mod_pow;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
