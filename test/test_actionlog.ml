(* Tests for the action-log substrate: relation semantics (at-most-once
   per user/action), cascade generation consistency, and the
   exclusive / non-exclusive partitioners. *)

module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module State = Spe_rng.State

let st () = State.create ~seed:31 ()

let mk_log recs = Log.of_records ~num_users:5 ~num_actions:4 recs

let r u a t = { Log.user = u; action = a; time = t }

(* --- Log ---------------------------------------------------------------- *)

let test_dedup_keeps_earliest () =
  let log = mk_log [ r 0 1 10; r 0 1 5; r 0 1 20 ] in
  Alcotest.(check int) "one record" 1 (Log.size log);
  Alcotest.(check (option int)) "earliest wins" (Some 5) (Log.time_of log ~user:0 ~action:1)

let test_validation () =
  let bad name records msg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (mk_log records))
  in
  bad "user range" [ r 9 0 0 ] "Log.of_records: user out of range";
  bad "action range" [ r 0 9 0 ] "Log.of_records: action out of range";
  bad "negative time" [ r 0 0 (-1) ] "Log.of_records: negative time"

let test_user_activity () =
  let log = mk_log [ r 0 0 1; r 0 1 2; r 1 0 3; r 0 0 9 (* dup *) ] in
  Alcotest.(check (array int)) "a_i" [| 2; 1; 0; 0; 0 |] (Log.user_activity log)

let test_by_action_sorted_by_time () =
  let log = mk_log [ r 2 1 30; r 0 1 10; r 1 1 20 ] in
  Alcotest.(check (list (pair int int))) "sorted by time"
    [ (0, 10); (1, 20); (2, 30) ]
    (Log.by_action log 1);
  Alcotest.(check (list (pair int int))) "empty action" [] (Log.by_action log 3)

let test_by_user () =
  let log = mk_log [ r 0 2 5; r 0 0 1 ] in
  Alcotest.(check (list (pair int int))) "actions of user 0" [ (0, 1); (2, 5) ] (Log.by_user log 0)

let test_actions_present () =
  let log = mk_log [ r 0 3 1; r 1 0 2 ] in
  Alcotest.(check (list int)) "present" [ 0; 3 ] (Log.actions_present log)

let test_max_time () =
  Alcotest.(check int) "empty log" 0 (Log.max_time (mk_log []));
  Alcotest.(check int) "max" 30 (Log.max_time (mk_log [ r 0 0 30; r 1 1 2 ]))

let test_union_reconciles () =
  let l1 = mk_log [ r 0 0 10 ] and l2 = mk_log [ r 0 0 4; r 1 1 6 ] in
  let u = Log.union ~num_users:5 ~num_actions:4 [ l1; l2 ] in
  Alcotest.(check int) "two records" 2 (Log.size u);
  Alcotest.(check (option int)) "earliest duplicate" (Some 4) (Log.time_of u ~user:0 ~action:0)

let test_filter_map () =
  let log = mk_log [ r 0 0 1; r 1 1 2; r 2 2 3 ] in
  let filtered = Log.filter_actions log (fun a -> a <= 1) in
  Alcotest.(check int) "filtered size" 2 (Log.size filtered);
  let shifted =
    Log.map_records log (fun rc -> { rc with Log.time = rc.Log.time + 100 }) ~num_users:5
      ~num_actions:4
  in
  Alcotest.(check (option int)) "shifted" (Some 101) (Log.time_of shifted ~user:0 ~action:0)

(* --- Cascade ------------------------------------------------------------ *)

let test_cascade_shapes () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:40 ~m:200 in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let params = { Cascade.num_actions = 20; seeds_per_action = 2; max_delay = 3 } in
  let log = Cascade.generate s planted params in
  Alcotest.(check int) "user universe" 40 (Log.num_users log);
  Alcotest.(check int) "action universe" 20 (Log.num_actions log);
  (* Every action has at least its seeds. *)
  List.iter
    (fun a ->
      if List.length (Log.by_action log a) < 1 then Alcotest.fail "action with no record")
    (List.init 20 (fun a -> a));
  Alcotest.(check bool) "some propagation happened" true (Log.size log > 40)

let test_cascade_seeds_at_time_zero () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:60 in
  let planted = Cascade.uniform_probabilities ~p:0.5 g in
  let log = Cascade.generate s planted { Cascade.default_params with num_actions = 10 } in
  List.iter
    (fun a ->
      match Log.by_action log a with
      | [] -> Alcotest.fail "empty action"
      | (_, t) :: _ -> Alcotest.(check int) "first activation at time 0" 0 t)
    (List.init 10 (fun a -> a))

let test_cascade_respects_edges () =
  (* With p = 1 and a path graph, activation times equal hop distances
     when max_delay = 1. *)
  let s = st () in
  let g = Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let planted = Cascade.uniform_probabilities ~p:1. g in
  (* Seed selection is random; use many actions and find one seeded at
     node 0 (activating all 5 nodes). *)
  let log =
    Cascade.generate s planted { Cascade.num_actions = 40; seeds_per_action = 1; max_delay = 1 }
  in
  let found_full_chain = ref false in
  List.iter
    (fun a ->
      let recs = Log.by_action log a in
      if List.length recs = 5 then begin
        found_full_chain := true;
        List.iteri
          (fun expect_t (u, t) ->
            Alcotest.(check int) "chain order" expect_t t;
            Alcotest.(check int) "chain user" expect_t u)
          recs
      end)
    (List.init 40 (fun a -> a));
  Alcotest.(check bool) "a full chain cascade occurred" true !found_full_chain

let test_cascade_zero_probability () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:10 ~m:30 in
  let planted = Cascade.uniform_probabilities ~p:0. g in
  let log = Cascade.generate s planted { Cascade.num_actions = 5; seeds_per_action = 1; max_delay = 2 } in
  Alcotest.(check int) "only seeds activate" 5 (Log.size log)

let test_degree_weighted () =
  let s = st () in
  let g = Digraph.create ~n:3 [ (0, 2); (1, 2) ] in
  let planted = Cascade.degree_weighted_probabilities g in
  Alcotest.(check (float 1e-9)) "1/in_degree" 0.5 (planted.Cascade.probability 0 2);
  ignore s

let test_random_probabilities_deterministic () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:10 ~m:20 in
  let planted = Cascade.random_probabilities s ~lo:0.1 ~hi:0.4 g in
  Digraph.iter_edges g (fun u v ->
      let p1 = planted.Cascade.probability u v in
      let p2 = planted.Cascade.probability u v in
      if p1 <> p2 then Alcotest.fail "probability not frozen";
      if p1 < 0.1 || p1 > 0.4 then Alcotest.fail "probability out of range")

(* --- Partition ----------------------------------------------------------- *)

let cascade_log s =
  let g = Generate.erdos_renyi_gnm s ~n:30 ~m:120 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  Cascade.generate s planted { Cascade.num_actions = 15; seeds_per_action = 1; max_delay = 2 }

let test_exclusive_partition () =
  let s = st () in
  let log = cascade_log s in
  let parts = Partition.exclusive s log ~m:4 in
  Alcotest.(check int) "four providers" 4 (Array.length parts);
  (* Each action appears in exactly one provider's log. *)
  List.iter
    (fun a ->
      let owners =
        Array.to_list parts
        |> List.filteri (fun _ l -> Log.by_action l a <> [])
        |> List.length
      in
      if Log.by_action log a <> [] then
        Alcotest.(check int) (Printf.sprintf "action %d exclusive" a) 1 owners)
    (List.init 15 (fun a -> a));
  (* Reunification is lossless. *)
  Alcotest.(check bool) "reunify" true (Log.equal log (Partition.reunify parts))

let test_non_exclusive_partition () =
  let s = st () in
  let log = cascade_log s in
  let spec = Partition.random_class_spec s ~num_actions:15 ~m:4 ~num_classes:3 in
  let parts = Partition.non_exclusive s log ~spec in
  Alcotest.(check bool) "reunify lossless" true (Log.equal log (Partition.reunify parts));
  (* Records of an action only live at providers supporting its class. *)
  Array.iteri
    (fun p l ->
      List.iter
        (fun (rc : Log.record) ->
          let cls = spec.Partition.action_class.(rc.Log.action) in
          let supporters = spec.Partition.class_providers.(cls) in
          if not (Array.exists (fun q -> q = p) supporters) then
            Alcotest.fail "record at non-supporting provider")
        (Log.records l))
    parts

let test_non_exclusive_can_split_trace () =
  (* Force a 2-provider class and check that some action's records are
     genuinely split across providers (the motivating scenario of the
     introduction: u buys at P1, v at P2). *)
  let s = st () in
  let log = cascade_log s in
  let spec =
    {
      Partition.action_class = Array.make 15 0;
      class_providers = [| [| 0; 1 |] |];
      m = 2;
    }
  in
  let parts = Partition.non_exclusive s log ~spec in
  let split_exists =
    List.exists
      (fun a -> Log.by_action parts.(0) a <> [] && Log.by_action parts.(1) a <> [])
      (List.init 15 (fun a -> a))
  in
  Alcotest.(check bool) "some trace is split across providers" true split_exists

let test_class_spec_validation () =
  let bad name spec msg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        Partition.validate_class_spec spec ~num_actions:2)
  in
  bad "empty providers"
    { Partition.action_class = [| 0; 0 |]; class_providers = [| [||] |]; m = 2 }
    "Partition.class_spec: class with no supporting provider";
  bad "class out of range"
    { Partition.action_class = [| 0; 5 |]; class_providers = [| [| 0 |] |]; m = 2 }
    "Partition.class_spec: class id out of range";
  bad "duplicate provider"
    { Partition.action_class = [| 0; 0 |]; class_providers = [| [| 1; 1 |] |]; m = 2 }
    "Partition.class_spec: duplicate provider"

let test_reunify_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Partition.reunify: empty provider array")
    (fun () -> ignore (Partition.reunify [||]));
  let a = Log.empty ~num_users:3 ~num_actions:3 and b = Log.empty ~num_users:4 ~num_actions:3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Partition.reunify: mismatched universes")
    (fun () -> ignore (Partition.reunify [| a; b |]))

(* --- Source --------------------------------------------------------------- *)

module Source = Spe_actionlog.Source

let test_source_replayable () =
  (* Same seed, log and parameters -> the identical event sequence;
     [reset] replays it too. *)
  let log = cascade_log (st ()) in
  let mk () =
    Source.create (State.create ~seed:77 ()) log ~rate:0.4 ~burstiness:0.5 ~jitter:3 ()
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "two sources agree" true (Source.events a = Source.events b);
  let first = Source.take_until a ~arrival:max_int in
  Source.reset a;
  let again = Source.take_until a ~arrival:max_int in
  Alcotest.(check bool) "reset replays" true (first = again);
  Alcotest.(check int) "drained" 0 (Source.remaining a)

let test_source_conserves_records () =
  let log = cascade_log (st ()) in
  let src = Source.create (State.create ~seed:5 ()) log ~rate:1.5 ~jitter:2 () in
  Alcotest.(check int) "length = log size" (Log.size log) (Source.length src);
  let sort = List.sort compare in
  Alcotest.(check bool) "every record delivered once" true
    (sort (List.map snd (Source.events src)) = sort (Log.records log))

let test_source_arrivals_monotone () =
  let log = cascade_log (st ()) in
  List.iter
    (fun (burstiness, jitter) ->
      let src =
        Source.create (State.create ~seed:9 ()) log ~rate:0.8 ~burstiness ~jitter ()
      in
      let rec check_sorted = function
        | (a1, _) :: ((a2, _) :: _ as rest) ->
          Alcotest.(check bool) "arrival order" true (a1 <= a2);
          check_sorted rest
        | _ -> ()
      in
      check_sorted (Source.events src);
      match (Source.next_arrival src, Source.last_arrival src) with
      | Some first, Some last -> Alcotest.(check bool) "first <= last" true (first <= last)
      | _ -> Alcotest.fail "non-empty source has arrivals")
    [ (0., 0); (0.6, 0); (0.3, 5) ]

let test_source_take_until_slices () =
  let log = cascade_log (st ()) in
  let src = Source.create (State.create ~seed:13 ()) log ~rate:0.3 ~burstiness:0.4 () in
  let all = Source.events src in
  let horizon =
    match Source.last_arrival src with Some l -> l / 2 | None -> Alcotest.fail "empty"
  in
  let early = Source.take_until src ~arrival:horizon in
  Alcotest.(check bool) "take_until = events prefix" true
    (early = List.map snd (List.filter (fun (a, _) -> a <= horizon) all));
  let late = Source.take_until src ~arrival:max_int in
  Alcotest.(check int) "no record lost across the slice"
    (Log.size log)
    (List.length early + List.length late);
  Alcotest.(check (list (pair int int))) "second take excludes the first" []
    (List.filter_map
       (fun (r : Log.record) ->
         if List.memq r early then Some (r.Log.user, r.Log.action) else None)
       late)

let test_source_jitter_reorders_time_boundedly () =
  (* Jitter produces out-of-order record times in arrival order, but a
     record never arrives more than [jitter] ticks after the arrival its
     time-order position would have had — the accumulator's lateness is
     bounded.  Cheap proxy: with jitter 0 the delivered time sequence is
     sorted; with jitter > 0 inversions exist for some seed, and every
     inversion is between records whose arrivals differ by <= jitter. *)
  let log = cascade_log (st ()) in
  let times src = List.map (fun (r : Log.record) -> r.Log.time) (Source.take_until src ~arrival:max_int) in
  let sorted l = List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length l - 1) l) (List.tl l) in
  let plain = Source.create (State.create ~seed:21 ()) log ~rate:0.9 () in
  Alcotest.(check bool) "jitter 0 delivers in time order" true (sorted (times plain));
  let jittered =
    List.exists
      (fun seed ->
        let src = Source.create (State.create ~seed ()) log ~rate:0.9 ~jitter:4 () in
        not (sorted (times src)))
      [ 22; 23; 24; 25 ]
  in
  Alcotest.(check bool) "jitter can reorder" true jittered

let test_source_validation () =
  let log = cascade_log (st ()) in
  let bad name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  bad "rate" "Source.create: rate must be positive" (fun () ->
      Source.create (st ()) log ~rate:0. ());
  bad "burstiness" "Source.create: burstiness must lie in [0, 1)" (fun () ->
      Source.create (st ()) log ~rate:1. ~burstiness:1. ());
  bad "jitter" "Source.create: jitter must be >= 0" (fun () ->
      Source.create (st ()) log ~rate:1. ~jitter:(-1) ())

(* --- QCheck ---------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"log dedup: at most one record per (user, action)" ~count:200
      (list (triple (int_range 0 4) (int_range 0 3) (int_range 0 50)))
      (fun triples ->
        let log = mk_log (List.map (fun (u, a, t) -> r u a t) triples) in
        let seen = Hashtbl.create 16 in
        List.for_all
          (fun (rc : Log.record) ->
            let k = (rc.Log.user, rc.Log.action) in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (Log.records log));
    Test.make ~name:"exclusive split partitions record count" ~count:50
      (pair small_nat (int_range 1 6))
      (fun (seed, m) ->
        let s = State.create ~seed () in
        let log = cascade_log s in
        let parts = Partition.exclusive s log ~m in
        Array.fold_left (fun acc l -> acc + Log.size l) 0 parts = Log.size log);
    Test.make ~name:"non-exclusive split partitions record count" ~count:50
      (pair small_nat (int_range 1 5))
      (fun (seed, num_classes) ->
        let s = State.create ~seed () in
        let log = cascade_log s in
        let spec = Partition.random_class_spec s ~num_actions:15 ~m:4 ~num_classes in
        let parts = Partition.non_exclusive s log ~spec in
        Array.fold_left (fun acc l -> acc + Log.size l) 0 parts = Log.size log);
  ]

let () =
  Alcotest.run "spe_actionlog"
    [
      ( "log",
        [
          Alcotest.test_case "dedup earliest" `Quick test_dedup_keeps_earliest;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "user activity" `Quick test_user_activity;
          Alcotest.test_case "by_action order" `Quick test_by_action_sorted_by_time;
          Alcotest.test_case "by_user" `Quick test_by_user;
          Alcotest.test_case "actions present" `Quick test_actions_present;
          Alcotest.test_case "max_time" `Quick test_max_time;
          Alcotest.test_case "union reconciles" `Quick test_union_reconciles;
          Alcotest.test_case "filter and map" `Quick test_filter_map;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "shapes" `Quick test_cascade_shapes;
          Alcotest.test_case "seeds at t=0" `Quick test_cascade_seeds_at_time_zero;
          Alcotest.test_case "chain cascade" `Quick test_cascade_respects_edges;
          Alcotest.test_case "p=0" `Quick test_cascade_zero_probability;
          Alcotest.test_case "degree weighted" `Quick test_degree_weighted;
          Alcotest.test_case "frozen probabilities" `Quick test_random_probabilities_deterministic;
        ] );
      ( "partition",
        [
          Alcotest.test_case "exclusive" `Quick test_exclusive_partition;
          Alcotest.test_case "non-exclusive" `Quick test_non_exclusive_partition;
          Alcotest.test_case "split traces" `Quick test_non_exclusive_can_split_trace;
          Alcotest.test_case "spec validation" `Quick test_class_spec_validation;
          Alcotest.test_case "reunify validation" `Quick test_reunify_validation;
        ] );
      ( "source",
        [
          Alcotest.test_case "replayable" `Quick test_source_replayable;
          Alcotest.test_case "conserves records" `Quick test_source_conserves_records;
          Alcotest.test_case "arrivals monotone" `Quick test_source_arrivals_monotone;
          Alcotest.test_case "take_until slices" `Quick test_source_take_until_slices;
          Alcotest.test_case "jitter reorders boundedly" `Quick
            test_source_jitter_reorders_time_boundedly;
          Alcotest.test_case "validation" `Quick test_source_validation;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
