(* End-to-end tests for the paper's headline protocols: Protocol 4
   (exclusive link strengths), Protocol 5 (non-exclusive class
   aggregation, both obfuscation modes), Protocol 6 (propagation
   graphs), and the drivers.  The specification oracle is always the
   plaintext computation over the unified log. *)

module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Propagation = Spe_influence.Propagation
module Wire = Spe_mpc.Wire
module Protocol4 = Spe_core.Protocol4
module Protocol5 = Spe_core.Protocol5
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module State = Spe_rng.State

let st () = State.create ~seed:83 ()

(* Standard workload: BA graph + cascades. *)
let workload ?(n = 40) ?(edges_m = 3) ?(num_actions = 25) s =
  let g = Generate.barabasi_albert s ~n ~m:edges_m in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log =
    Cascade.generate s planted { Cascade.num_actions; seeds_per_action = 1; max_delay = 3 }
  in
  (g, log)

let plaintext_eq1 log g ~h ~pairs =
  let ct = Counters.compute log ~h ~pairs in
  Link_strength.restrict_to_graph ct (Link_strength.all_eq1 ct) g

let plaintext_eq2 log g ~h ~w ~pairs =
  let ct = Counters.compute log ~h ~pairs in
  Link_strength.restrict_to_graph ct (Link_strength.all_eq2 ct w) g

let check_strengths ~expected ~got =
  Alcotest.(check int) "same arc count" (List.length expected) (List.length got);
  List.iter2
    (fun ((u, v), p_exp) ((u', v'), p_got) ->
      if u <> u' || v <> v' then Alcotest.fail "arc mismatch";
      (* Tolerance: summing masked 53-bit float shares of magnitude ~S
         cancels catastrophically, leaving ~ S * 2^-53 absolute noise
         on the counters — about 1e-4 relative at the default
         S = 2^40.  The dedicated precision test quantifies this. *)
      if abs_float (p_exp -. p_got) > 1e-3 *. (p_exp +. 1.) then
        Alcotest.failf "p(%d,%d): secure %.9f <> plaintext %.9f" u v p_got p_exp)
    expected got

(* --- Protocol 4 -------------------------------------------------------------- *)

let test_p4_matches_plaintext_eq1 () =
  let s = st () in
  for m = 2 to 5 do
    let g, log = workload s in
    let logs = Partition.exclusive s log ~m in
    let config = Protocol4.default_config ~h:3 in
    let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
    let expected = plaintext_eq1 log g ~h:3 ~pairs:r.Driver.detail.Protocol4.pairs in
    check_strengths ~expected ~got:r.Driver.strengths
  done

let test_p4_matches_plaintext_eq2 () =
  let s = st () in
  let g, log = workload s in
  let logs = Partition.exclusive s log ~m:3 in
  let w = Link_strength.linear_decay_weights ~h:4 in
  let config = { (Protocol4.default_config ~h:4) with Protocol4.estimator = Protocol4.Eq2 w } in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  let expected = plaintext_eq2 log g ~h:4 ~w ~pairs:r.Driver.detail.Protocol4.pairs in
  check_strengths ~expected ~got:r.Driver.strengths

let test_p4_decoy_pairs_present () =
  let s = st () in
  let g, log = workload s in
  let logs = Partition.exclusive s log ~m:3 in
  let config = { (Protocol4.default_config ~h:3) with Protocol4.c_factor = 2.5 } in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  let q = Array.length r.Driver.detail.Protocol4.pairs in
  Alcotest.(check bool) "published set blown up" true
    (q >= int_of_float (2.5 *. float_of_int (Digraph.edge_count g)));
  Alcotest.(check int) "estimates cover all published pairs" q
    (Array.length r.Driver.detail.Protocol4.pair_estimates)

let test_p4_inactive_users_zero () =
  (* A user that never acts must end with p = 0 on all outgoing arcs,
     via the exact zero-cancellation of the masked denominator. *)
  let s = st () in
  let g = Digraph.create ~n:4 [ (0, 1); (2, 3) ] in
  (* User 0 never acts. *)
  let log =
    Log.of_records ~num_users:4 ~num_actions:3
      [
        { Log.user = 2; action = 0; time = 0 };
        { Log.user = 3; action = 0; time = 1 };
        { Log.user = 1; action = 1; time = 5 };
      ]
  in
  let logs = Partition.exclusive s log ~m:2 in
  let config = Protocol4.default_config ~h:2 in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  List.iter
    (fun ((u, _), p) -> if u = 0 then Alcotest.(check (float 0.)) "p(0,*) = 0" 0. p)
    r.Driver.strengths;
  (* And the active pair keeps its exact value 1/1. *)
  let p23 = List.assoc (2, 3) r.Driver.strengths in
  Alcotest.(check bool) "p(2,3) = 1" true (abs_float (p23 -. 1.) < 1e-3)

let test_p4_wire_stats_structure () =
  let s = st () in
  let g, log = workload s in
  let m = 4 in
  let logs = Partition.exclusive s log ~m in
  let config = Protocol4.default_config ~h:3 in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  let stats = r.Driver.wire in
  (* Table 1: 8 rounds, m^2 + m + 7 messages. *)
  Alcotest.(check int) "NR = 8" 8 stats.Wire.rounds;
  Alcotest.(check int) "NM = m^2 + m + 7" ((m * m) + m + 7) stats.Wire.messages

let test_p4_wire_stats_m2 () =
  (* With m = 2 there is no Protocol 1 collect round and no forwarding
     from providers 3..m: 7 rounds, m(m-1) + 2 + 1 + 2 + 2 + 2 + m
     messages. *)
  let s = st () in
  let g, log = workload s in
  let logs = Partition.exclusive s log ~m:2 in
  let config = Protocol4.default_config ~h:3 in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  Alcotest.(check int) "NR = 7 when m = 2" 7 r.Driver.wire.Wire.rounds

let test_p4_leak_arrays_sized () =
  let s = st () in
  let g, log = workload s in
  let logs = Partition.exclusive s log ~m:3 in
  let config = Protocol4.default_config ~h:3 in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  let n = Digraph.n g and q = Array.length r.Driver.detail.Protocol4.pairs in
  Alcotest.(check int) "one leak slot per counter (Eq1: n + q)" (n + q)
    (Array.length r.Driver.detail.Protocol4.p2_leaks)

let test_p4_validation () =
  let s = st () in
  let g, log = workload s in
  let logs = Partition.exclusive s log ~m:1 in
  Alcotest.check_raises "one provider rejected"
    (Invalid_argument "Protocol4.run_with_logs: need at least two providers") (fun () ->
      ignore (Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:3)));
  let logs2 = Partition.exclusive s log ~m:2 in
  Alcotest.check_raises "modulus too small"
    (Invalid_argument "Protocol4.run: modulus must exceed A") (fun () ->
      ignore
        (Driver.link_strengths_exclusive s ~graph:g ~logs:logs2
           { (Protocol4.default_config ~h:3) with Protocol4.modulus = 10 }))

(* --- Protocol 5 -------------------------------------------------------------- *)

let class_counters_oracle log =
  (* Plaintext class counters over the unified class log. *)
  let a = Log.user_activity log in
  (a, fun (i, j) l -> Counters.c_single log ~l ~i ~j)

let run_p5 s ~obfuscation log ~d =
  let spec =
    { Partition.action_class = Array.make (Log.num_actions log) 0;
      class_providers = [| Array.init d (fun k -> k) |]; m = d + 1 }
  in
  let parts = Partition.non_exclusive s log ~spec in
  let class_logs = Array.sub parts 0 d in
  let wire = Wire.create () in
  let providers = Array.init d (fun k -> Wire.Provider k) in
  let counters =
    Protocol5.run s ~wire ~h:3 ~providers ~trusted:(Wire.Provider d) ~logs:class_logs
      ~obfuscation
  in
  (counters, Wire.stats wire)

let check_p5_counters log (cc : Protocol5.class_counters) =
  let a_exp, c_exp = class_counters_oracle log in
  Alcotest.(check (array int)) "a counters" a_exp cc.Protocol5.a;
  (* Every stored pair row matches the oracle... *)
  Hashtbl.iter
    (fun (i, j) row ->
      Array.iteri
        (fun l v ->
          if v <> c_exp (i, j) (l + 1) then
            Alcotest.failf "c^%d(%d,%d): got %d want %d" (l + 1) i j v (c_exp (i, j) (l + 1)))
        row)
    cc.Protocol5.c_table;
  (* ...and no non-zero oracle pair is missing. *)
  let n = Log.num_users log in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        for l = 1 to 3 do
          let expected = c_exp (i, j) l in
          let got =
            match Hashtbl.find_opt cc.Protocol5.c_table (i, j) with
            | Some row -> row.(l - 1)
            | None -> 0
          in
          if got <> expected then
            Alcotest.failf "missing c^%d(%d,%d): got %d want %d" l i j got expected
        done
    done
  done

let test_p5_basic_correct () =
  let s = st () in
  let _, log = workload ~n:20 ~num_actions:15 s in
  let cc, stats = run_p5 s ~obfuscation:Protocol5.Basic log ~d:3 in
  check_p5_counters log cc;
  Alcotest.(check int) "two rounds" 2 stats.Wire.rounds;
  Alcotest.(check int) "d + 1 messages" 4 stats.Wire.messages

let test_p5_enhanced_correct () =
  let s = st () in
  let _, log = workload ~n:20 ~num_actions:15 s in
  let cc, stats = run_p5 s ~obfuscation:Protocol5.Enhanced log ~d:3 in
  check_p5_counters log cc;
  (* Enhanced mode ships strictly more bits (padding). *)
  let _, basic_stats = run_p5 (st ()) ~obfuscation:Protocol5.Basic log ~d:3 in
  Alcotest.(check bool) "padding costs bits" true (stats.Wire.bits > basic_stats.Wire.bits)

let test_p5_single_provider_class () =
  let s = st () in
  let _, log = workload ~n:15 ~num_actions:10 s in
  let cc, _ = run_p5 s ~obfuscation:Protocol5.Basic log ~d:1 in
  check_p5_counters log cc

let test_p5_trusted_must_be_outside () =
  let s = st () in
  let _, log = workload ~n:10 ~num_actions:5 s in
  let wire = Wire.create () in
  Alcotest.check_raises "trusted inside class"
    (Invalid_argument "Protocol5.run: trusted party must be outside the class providers")
    (fun () ->
      ignore
        (Protocol5.run s ~wire ~h:2 ~providers:[| Wire.Provider 0 |] ~trusted:(Wire.Provider 0)
           ~logs:[| log |] ~obfuscation:Protocol5.Basic))

let test_p5_empty_class () =
  let s = st () in
  let empty = Log.empty ~num_users:5 ~num_actions:3 in
  let wire = Wire.create () in
  let cc =
    Protocol5.run s ~wire ~h:2 ~providers:[| Wire.Provider 0; Wire.Provider 1 |]
      ~trusted:Wire.Host ~logs:[| empty; empty |] ~obfuscation:Protocol5.Enhanced
  in
  Alcotest.(check (array int)) "all-zero activity" (Array.make 5 0) cc.Protocol5.a;
  Alcotest.(check int) "no pairs" 0 (Hashtbl.length cc.Protocol5.c_table)

(* --- non-exclusive driver ------------------------------------------------------ *)

let test_non_exclusive_driver_matches_plaintext () =
  let s = st () in
  List.iter
    (fun obfuscation ->
      let g, log = workload ~n:25 ~num_actions:20 s in
      let m = 4 in
      let spec = Partition.random_class_spec s ~num_actions:20 ~m ~num_classes:3 in
      let logs = Partition.non_exclusive s log ~spec in
      let config = Protocol4.default_config ~h:3 in
      let r = Driver.link_strengths_non_exclusive s ~graph:g ~logs ~spec ~obfuscation config in
      let expected = plaintext_eq1 log g ~h:3 ~pairs:r.Driver.detail.Protocol4.pairs in
      check_strengths ~expected ~got:r.Driver.strengths)
    [ Protocol5.Basic; Protocol5.Enhanced ]

let test_non_exclusive_driver_eq2 () =
  let s = st () in
  let g, log = workload ~n:25 ~num_actions:20 s in
  let m = 3 in
  let spec = Partition.random_class_spec s ~num_actions:20 ~m ~num_classes:2 in
  let logs = Partition.non_exclusive s log ~spec in
  let w = Link_strength.exponential_decay_weights ~h:3 ~alpha:0.6 in
  let config = { (Protocol4.default_config ~h:3) with Protocol4.estimator = Protocol4.Eq2 w } in
  let r =
    Driver.link_strengths_non_exclusive s ~graph:g ~logs ~spec
      ~obfuscation:Protocol5.Basic config
  in
  let expected = plaintext_eq2 log g ~h:3 ~w ~pairs:r.Driver.detail.Protocol4.pairs in
  check_strengths ~expected ~got:r.Driver.strengths

(* --- Protocol 6 ------------------------------------------------------------------ *)

let test_p6_reconstructs_propagation_graphs () =
  let s = st () in
  let g, log = workload ~n:25 ~num_actions:15 s in
  let logs = Partition.exclusive s log ~m:3 in
  let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
  let wire = Wire.create () in
  let r = Protocol6.run s ~wire ~graph:g ~logs config in
  Alcotest.(check int) "one graph per action" 15 (Array.length r.Protocol6.graphs);
  Array.iteri
    (fun action pg ->
      let expected = Propagation.of_log log g ~action in
      if not (Propagation.equal pg expected) then
        Alcotest.failf "PG(%d) differs from plaintext" action)
    r.Protocol6.graphs

let test_p6_packing_preserves_output_and_saves_bits () =
  let s = State.create ~seed:83 () in
  let g, log = workload ~n:25 ~num_actions:15 s in
  let logs = Partition.exclusive s log ~m:3 in
  let run pack_slots seed =
    let s = State.create ~seed () in
    (* Regenerate the same workload deterministically. *)
    ignore s;
    let s = State.create ~seed:5 () in
    let wire = Wire.create () in
    let config = { Protocol6.default_config with Protocol6.key_bits = 128; pack_slots } in
    let result = Protocol6.run s ~wire ~graph:g ~logs config in
    (result, Wire.stats wire)
  in
  let plain, plain_stats = run 1 1 in
  let packed, packed_stats = run Spe_mpc.Pack.max_packed_bits 2 in
  Array.iteri
    (fun action pg ->
      if not (Propagation.equal pg packed.Protocol6.graphs.(action)) then
        Alcotest.failf "packing changed PG(%d)" action)
    plain.Protocol6.graphs;
  Alcotest.(check bool) "packing cuts ciphertext count" true
    (packed.Protocol6.ciphertexts < plain.Protocol6.ciphertexts);
  Alcotest.(check bool) "packing cuts bits" true
    (packed_stats.Wire.bits < plain_stats.Wire.bits)

let test_p6_paillier_scheme () =
  let s = st () in
  let g, log = workload ~n:15 ~num_actions:8 s in
  let logs = Partition.exclusive s log ~m:2 in
  let wire = Wire.create () in
  let config =
    { Protocol6.default_config with Protocol6.key_bits = 128; scheme = Protocol6.Paillier }
  in
  let r = Protocol6.run s ~wire ~graph:g ~logs config in
  Array.iteri
    (fun action pg ->
      let expected = Propagation.of_log log g ~action in
      if not (Propagation.equal pg expected) then Alcotest.failf "PG(%d) differs" action)
    r.Protocol6.graphs

let test_p6_rejects_non_exclusive () =
  let s = st () in
  let g, log = workload ~n:15 ~num_actions:8 s in
  (* Build overlapping logs: both providers hold the full log. *)
  let logs = [| log; log |] in
  let wire = Wire.create () in
  Alcotest.check_raises "non-exclusive rejected"
    (Invalid_argument "Protocol6.run: logs are not exclusive (run Protocol 5 first)")
    (fun () ->
      ignore
        (Protocol6.run s ~wire ~graph:g ~logs
           { Protocol6.default_config with Protocol6.key_bits = 64 }))

let test_p6_wire_structure () =
  let s = st () in
  let g, log = workload ~n:20 ~num_actions:10 s in
  let m = 4 in
  let logs = Partition.exclusive s log ~m in
  let wire = Wire.create () in
  let _ = Protocol6.run s ~wire ~graph:g ~logs { Protocol6.default_config with Protocol6.key_bits = 128 } in
  let stats = Wire.stats wire in
  (* Table 2: 4 rounds; pairs broadcast (m) + key broadcast (m) +
     bundles (m - 1) + forward (1) = 3m messages. *)
  Alcotest.(check int) "NR = 4" 4 stats.Wire.rounds;
  Alcotest.(check int) "NM = 3m" (3 * m) stats.Wire.messages

(* --- score driver ------------------------------------------------------------------ *)

let test_scores_match_plaintext () =
  let s = st () in
  let g, log = workload ~n:25 ~num_actions:15 s in
  let logs = Partition.exclusive s log ~m:3 in
  let r =
    Driver.user_scores_exclusive s ~graph:g ~logs ~tau:6 ~modulus:(1 lsl 30)
      { Protocol6.default_config with Protocol6.key_bits = 128 }
  in
  let expected = Propagation.score log g ~tau:6 in
  Array.iteri
    (fun i sc ->
      if abs_float (sc -. expected.(i)) > 1e-3 *. (expected.(i) +. 1.) then
        Alcotest.failf "score(%d): secure %.9f <> plaintext %.9f" i sc expected.(i))
    r.Driver.scores

let test_scores_zero_activity_user () =
  let s = st () in
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let log =
    Log.of_records ~num_users:3 ~num_actions:2
      [ { Log.user = 1; action = 0; time = 0 }; { Log.user = 2; action = 0; time = 1 } ]
  in
  let logs = Partition.exclusive s log ~m:2 in
  let r =
    Driver.user_scores_exclusive s ~graph:g ~logs ~tau:5 ~modulus:(1 lsl 20)
      { Protocol6.default_config with Protocol6.key_bits = 64 }
  in
  Alcotest.(check (float 0.)) "user 0 (inactive) scores 0" 0. r.Driver.scores.(0);
  Alcotest.(check bool) "user 1 scores 1" true (abs_float (r.Driver.scores.(1) -. 1.) < 1e-3)

(* --- secure Jaccard variant ----------------------------------------------------------- *)

module Protocol4_jaccard = Spe_core.Protocol4_jaccard

let test_jaccard_protocol_matches_plaintext () =
  let s = st () in
  for m = 2 to 4 do
    let g, log = workload ~n:25 ~num_actions:15 s in
    let logs = Partition.exclusive s log ~m in
    let wire = Wire.create () in
    let r =
      Protocol4_jaccard.run_with_logs s ~wire ~graph:g ~logs ~h:3 ~c_factor:2.
        ~modulus:(1 lsl 40)
    in
    let ct = Counters.compute log ~h:3 ~pairs:r.Protocol4_jaccard.pairs in
    let expected =
      Link_strength.restrict_to_graph ct (Link_strength.all_jaccard ct) g
    in
    List.iter2
      (fun ((u, v), p_exp) ((u', v'), p_got) ->
        if u <> u' || v <> v' then Alcotest.fail "arc mismatch";
        if abs_float (p_exp -. p_got) > 1e-3 *. (p_exp +. 1.) then
          Alcotest.failf "jaccard(%d,%d): secure %.6f <> plaintext %.6f" u v p_got p_exp)
      expected r.Protocol4_jaccard.strengths
  done

let test_jaccard_protocol_modulus_check () =
  let s = st () in
  let g, log = workload ~n:10 ~num_actions:15 s in
  let logs = Partition.exclusive s log ~m:2 in
  let wire = Wire.create () in
  Alcotest.check_raises "S must exceed 2A"
    (Invalid_argument "Protocol4_jaccard.run_with_logs: modulus must exceed 2A") (fun () ->
      ignore (Protocol4_jaccard.run_with_logs s ~wire ~graph:g ~logs ~h:3 ~c_factor:2. ~modulus:20))

(* --- robustness / degenerate inputs -------------------------------------------------- *)

let test_p4_empty_logs () =
  (* Nobody ever acted: every strength is exactly zero. *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:10 ~m:30 in
  let empty = Log.empty ~num_users:10 ~num_actions:5 in
  let r =
    Driver.link_strengths_exclusive s ~graph:g ~logs:[| empty; empty |]
      (Protocol4.default_config ~h:2)
  in
  Alcotest.(check int) "all arcs present" 30 (List.length r.Driver.strengths);
  List.iter (fun (_, p) -> Alcotest.(check (float 0.)) "zero" 0. p) r.Driver.strengths

let test_p4_edgeless_graph () =
  (* No arcs: the protocol still runs over the n activity counters and
     returns an empty strength list. *)
  let s = st () in
  let g = Digraph.create ~n:6 [] in
  let log =
    Log.of_records ~num_users:6 ~num_actions:3 [ { Log.user = 0; action = 0; time = 0 } ]
  in
  let logs = Partition.exclusive s log ~m:2 in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:2) in
  Alcotest.(check int) "no strengths" 0 (List.length r.Driver.strengths);
  Alcotest.(check bool) "wire still ran" true (r.Driver.wire.Wire.messages > 0)

let test_p4_single_action_universe () =
  let s = st () in
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let log =
    Log.of_records ~num_users:3 ~num_actions:1
      [ { Log.user = 0; action = 0; time = 0 }; { Log.user = 1; action = 0; time = 1 } ]
  in
  let logs = Partition.exclusive s log ~m:2 in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:2) in
  let p01 = List.assoc (0, 1) r.Driver.strengths in
  Alcotest.(check bool) "p(0,1) = 1 on the single action" true (abs_float (p01 -. 1.) < 1e-3)

let test_p4_window_wider_than_horizon () =
  (* h far beyond the largest gap: every follow counts; nothing breaks. *)
  let s = st () in
  let g, log = workload ~n:15 ~num_actions:8 s in
  let logs = Partition.exclusive s log ~m:2 in
  let r =
    Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:50)
  in
  (* Masked float shares carry ~1e-4 absolute noise at S = 2^40. *)
  List.iter
    (fun (_, p) -> if p < -1e-3 || p > 1. +. 1e-3 then Alcotest.fail "strength out of range")
    r.Driver.strengths

let test_p5_simultaneous_records () =
  (* All class records share one time stamp: the enhanced obfuscation's
     slot padding degenerates gracefully and counters stay correct
     (zero everywhere, since simultaneity is not influence). *)
  let s = st () in
  let recs = List.init 6 (fun u -> { Log.user = u; action = u mod 3; time = 7 }) in
  let log = Log.of_records ~num_users:6 ~num_actions:3 recs in
  let cc, _ = run_p5 s ~obfuscation:Protocol5.Enhanced log ~d:2 in
  Alcotest.(check int) "no influence pairs" 0 (Hashtbl.length cc.Protocol5.c_table);
  Alcotest.(check (array int)) "activity preserved" (Log.user_activity log) cc.Protocol5.a

let test_p6_unperformed_actions () =
  (* Action universe larger than the performed set: empty PGs for the
     silent actions. *)
  let s = st () in
  let g = Digraph.create ~n:4 [ (0, 1) ] in
  let log =
    Log.of_records ~num_users:4 ~num_actions:6
      [ { Log.user = 0; action = 2; time = 0 }; { Log.user = 1; action = 2; time = 1 } ]
  in
  let logs = Partition.exclusive s log ~m:2 in
  let wire = Wire.create () in
  let r =
    Protocol6.run s ~wire ~graph:g ~logs { Protocol6.default_config with Protocol6.key_bits = 64 }
  in
  Alcotest.(check int) "universe-sized output" 6 (Array.length r.Protocol6.graphs);
  Array.iteri
    (fun action pg ->
      let expected = if action = 2 then 1 else 0 in
      Alcotest.(check int)
        (Printf.sprintf "arcs of PG(%d)" action)
        expected
        (Array.length pg.Spe_influence.Propagation.arcs))
    r.Protocol6.graphs

let test_scores_tau_zero () =
  let s = st () in
  let g, log = workload ~n:12 ~num_actions:6 s in
  let logs = Partition.exclusive s log ~m:2 in
  let r =
    Driver.user_scores_exclusive s ~graph:g ~logs ~tau:0 ~modulus:(1 lsl 20)
      { Protocol6.default_config with Protocol6.key_bits = 64 }
  in
  Array.iter (fun sc -> Alcotest.(check (float 1e-9)) "tau=0 scores vanish" 0. sc) r.Driver.scores

let test_non_exclusive_provider_with_no_class () =
  (* A provider that supports no class contributes all-zero counters
     through the zero-input path; results still match plaintext. *)
  let s = st () in
  let g, log = workload ~n:15 ~num_actions:10 s in
  let spec =
    {
      Partition.action_class = Array.make 10 0;
      class_providers = [| [| 0; 1 |] |] (* provider 2 supports nothing *);
      m = 3;
    }
  in
  let logs = Partition.non_exclusive s log ~spec in
  Alcotest.(check int) "provider 3 log is empty" 0 (Log.size logs.(2));
  let config = Protocol4.default_config ~h:2 in
  let r =
    Driver.link_strengths_non_exclusive s ~graph:g ~logs ~spec
      ~obfuscation:Protocol5.Basic config
  in
  let expected = plaintext_eq1 log g ~h:2 ~pairs:r.Driver.detail.Protocol4.pairs in
  check_strengths ~expected ~got:r.Driver.strengths

(* --- QCheck ------------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"protocol 4 equals plaintext on random workloads" ~count:15
      (pair small_nat (int_range 2 4))
      (fun (seed, m) ->
        let s = State.create ~seed () in
        let g, log = workload ~n:15 ~num_actions:10 s in
        let logs = Partition.exclusive s log ~m in
        let config = Protocol4.default_config ~h:2 in
        let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
        let expected = plaintext_eq1 log g ~h:2 ~pairs:r.Driver.detail.Protocol4.pairs in
        List.for_all2
          (fun ((_, _), p_exp) ((_, _), p_got) -> abs_float (p_exp -. p_got) < 1e-3)
          expected r.Driver.strengths);
    Test.make ~name:"protocol 5 equals plaintext on random workloads" ~count:10
      (pair small_nat (int_range 1 3))
      (fun (seed, d) ->
        let s = State.create ~seed () in
        let _, log = workload ~n:12 ~num_actions:8 s in
        let cc, _ = run_p5 s ~obfuscation:Protocol5.Enhanced log ~d in
        let a_exp = Log.user_activity log in
        cc.Protocol5.a = a_exp);
    Test.make ~name:"multi-host equals plaintext on random splits" ~count:8
      (pair small_nat (int_range 1 3))
      (fun (seed, t) ->
        let s = State.create ~seed () in
        let g, log = workload ~n:14 ~num_actions:8 s in
        let buckets = Array.make t [] in
        Digraph.iter_edges g (fun u v ->
            let j = State.next_int s t in
            buckets.(j) <- (u, v) :: buckets.(j));
        let graphs = Array.map (fun arcs -> Digraph.create ~n:(Digraph.n g) arcs) buckets in
        let logs = Partition.exclusive s log ~m:2 in
        let wire = Wire.create () in
        let results =
          Spe_core.Protocol4_multi_host.run s ~wire ~graphs ~logs
            (Protocol4.default_config ~h:2)
        in
        let a = Log.user_activity log in
        Array.for_all
          (fun r ->
            List.for_all
              (fun ((u, v), p) ->
                let b = Counters.b_single log ~h:2 ~i:u ~j:v in
                let expected = if a.(u) = 0 then 0. else float_of_int b /. float_of_int a.(u) in
                abs_float (p -. expected) < 1e-3 *. (expected +. 1.))
              r.Spe_core.Protocol4_multi_host.strengths)
          results);
    Test.make ~name:"secure jaccard equals plaintext on random workloads" ~count:8 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g, log = workload ~n:14 ~num_actions:8 s in
        let logs = Partition.exclusive s log ~m:2 in
        let wire = Wire.create () in
        let r =
          Spe_core.Protocol4_jaccard.run_with_logs s ~wire ~graph:g ~logs ~h:2 ~c_factor:2.
            ~modulus:(1 lsl 40)
        in
        let ct = Counters.compute log ~h:2 ~pairs:r.Spe_core.Protocol4_jaccard.pairs in
        let expected = Link_strength.restrict_to_graph ct (Link_strength.all_jaccard ct) g in
        List.for_all2
          (fun (_, p_exp) (_, p_got) -> abs_float (p_exp -. p_got) < 1e-3 *. (p_exp +. 1.))
          expected r.Spe_core.Protocol4_jaccard.strengths);
  ]

let () =
  Alcotest.run "spe_core"
    [
      ( "protocol4",
        [
          Alcotest.test_case "matches plaintext (Eq1, m=2..5)" `Quick test_p4_matches_plaintext_eq1;
          Alcotest.test_case "matches plaintext (Eq2)" `Quick test_p4_matches_plaintext_eq2;
          Alcotest.test_case "decoy pairs" `Quick test_p4_decoy_pairs_present;
          Alcotest.test_case "inactive users" `Quick test_p4_inactive_users_zero;
          Alcotest.test_case "wire structure (Table 1)" `Quick test_p4_wire_stats_structure;
          Alcotest.test_case "wire structure m=2" `Quick test_p4_wire_stats_m2;
          Alcotest.test_case "leak arrays" `Quick test_p4_leak_arrays_sized;
          Alcotest.test_case "validation" `Quick test_p4_validation;
        ] );
      ( "protocol5",
        [
          Alcotest.test_case "basic obfuscation" `Quick test_p5_basic_correct;
          Alcotest.test_case "enhanced obfuscation" `Quick test_p5_enhanced_correct;
          Alcotest.test_case "single provider class" `Quick test_p5_single_provider_class;
          Alcotest.test_case "trusted outside class" `Quick test_p5_trusted_must_be_outside;
          Alcotest.test_case "empty class" `Quick test_p5_empty_class;
        ] );
      ( "non-exclusive",
        [
          Alcotest.test_case "driver matches plaintext" `Quick
            test_non_exclusive_driver_matches_plaintext;
          Alcotest.test_case "driver Eq2" `Quick test_non_exclusive_driver_eq2;
        ] );
      ( "protocol6",
        [
          Alcotest.test_case "reconstructs PGs" `Quick test_p6_reconstructs_propagation_graphs;
          Alcotest.test_case "packing ablation" `Quick test_p6_packing_preserves_output_and_saves_bits;
          Alcotest.test_case "paillier scheme" `Quick test_p6_paillier_scheme;
          Alcotest.test_case "rejects non-exclusive" `Quick test_p6_rejects_non_exclusive;
          Alcotest.test_case "wire structure (Table 2)" `Quick test_p6_wire_structure;
        ] );
      ( "scores",
        [
          Alcotest.test_case "match plaintext" `Quick test_scores_match_plaintext;
          Alcotest.test_case "zero-activity user" `Quick test_scores_zero_activity_user;
        ] );
      ( "jaccard-protocol",
        [
          Alcotest.test_case "matches plaintext" `Quick test_jaccard_protocol_matches_plaintext;
          Alcotest.test_case "modulus check" `Quick test_jaccard_protocol_modulus_check;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "empty logs" `Quick test_p4_empty_logs;
          Alcotest.test_case "edgeless graph" `Quick test_p4_edgeless_graph;
          Alcotest.test_case "single action" `Quick test_p4_single_action_universe;
          Alcotest.test_case "oversized window" `Quick test_p4_window_wider_than_horizon;
          Alcotest.test_case "simultaneous records" `Quick test_p5_simultaneous_records;
          Alcotest.test_case "unperformed actions" `Quick test_p6_unperformed_actions;
          Alcotest.test_case "tau = 0" `Quick test_scores_tau_zero;
          Alcotest.test_case "idle provider" `Quick test_non_exclusive_provider_with_no_class;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
