(* Tests for the plaintext influence algorithms: counters against
   hand-computed examples and brute force, link strengths (Eqs. 1-2),
   propagation graphs and scores (Defs. 3.1-3.3), ground-truth recovery
   from cascades, and influence maximisation. *)

module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Propagation = Spe_influence.Propagation
module Maximize = Spe_influence.Maximize
module State = Spe_rng.State

let st () = State.create ~seed:47 ()

let r u a t = { Log.user = u; action = a; time = t }

(* A small hand-checkable log: 3 users, 3 actions.
   action 0: u0@1, u1@2, u2@5
   action 1: u0@1, u1@4
   action 2: u1@1, u0@2 *)
let small_log () =
  Log.of_records ~num_users:3 ~num_actions:3
    [ r 0 0 1; r 1 0 2; r 2 0 5; r 0 1 1; r 1 1 4; r 1 2 1; r 0 2 2 ]

(* --- counters ------------------------------------------------------------ *)

let test_counters_hand_computed () =
  let log = small_log () in
  let pairs = [| (0, 1); (1, 0); (0, 2); (1, 2) |] in
  let ct = Counters.compute log ~h:3 ~pairs in
  Alcotest.(check (array int)) "a_i" [| 3; 3; 1 |] ct.Counters.a;
  (* b^3(0,1): action 0 (gap 1, yes), action 1 (gap 3, yes), action 2
     (u1 before u0, no) = 2.
     b^3(1,0): only action 2 qualifies (gap 1) = 1.
     b^3(0,2): action 0 gap 4 > 3 = 0.
     b^3(1,2): action 0 gap 3 = 1. *)
  Alcotest.(check (array int)) "b^3" [| 2; 1; 0; 1 |] ct.Counters.b;
  (* c-lags for (0,1): gaps 1 and 3 -> c^1 = 1, c^2 = 0, c^3 = 1. *)
  Alcotest.(check (array int)) "c lags of (0,1)" [| 1; 0; 1 |] ct.Counters.c.(0)

let test_counters_window_sensitivity () =
  let log = small_log () in
  Alcotest.(check int) "h=1 only fast follows" 1 (Counters.b_single log ~h:1 ~i:0 ~j:1);
  Alcotest.(check int) "h=2" 1 (Counters.b_single log ~h:2 ~i:0 ~j:1);
  Alcotest.(check int) "h=3 catches the slow follow" 2 (Counters.b_single log ~h:3 ~i:0 ~j:1);
  Alcotest.(check int) "h=4 wide window includes (0,2)" 1 (Counters.b_single log ~h:4 ~i:0 ~j:2)

let test_counters_b_equals_sum_c () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:25 ~m:120 in
  let planted = Cascade.uniform_probabilities ~p:0.35 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 30; seeds_per_action = 1; max_delay = 4 } in
  let ct = Counters.compute_graph log ~h:5 g in
  Array.iteri
    (fun k b ->
      let sum_c = Array.fold_left ( + ) 0 ct.Counters.c.(k) in
      if b <> sum_c then Alcotest.failf "b <> sum of c at pair %d" k)
    ct.Counters.b

let test_counters_simultaneous_not_counted () =
  (* Strict inequality t < t': same-time actions are not influence. *)
  let log = Log.of_records ~num_users:2 ~num_actions:1 [ r 0 0 3; r 1 0 3 ] in
  Alcotest.(check int) "simultaneity excluded" 0 (Counters.b_single log ~h:5 ~i:0 ~j:1)

let test_counters_add () =
  let log = small_log () in
  let pairs = [| (0, 1); (1, 2) |] in
  let ct = Counters.compute log ~h:3 ~pairs in
  let doubled = Counters.add ct ct in
  Alcotest.(check (array int)) "a doubled" (Array.map (fun x -> 2 * x) ct.Counters.a)
    doubled.Counters.a;
  Alcotest.(check (array int)) "b doubled" (Array.map (fun x -> 2 * x) ct.Counters.b)
    doubled.Counters.b

let test_counters_split_sum_identity () =
  (* The exclusive-case identity: counters of a log equal the sum of
     the counters of any exclusive split (Sec. 5.1). *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:80 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 12; seeds_per_action = 1; max_delay = 2 } in
  let parts = Spe_actionlog.Partition.exclusive s log ~m:3 in
  let pairs = Array.of_list (Digraph.edges g) in
  let whole = Counters.compute log ~h:3 ~pairs in
  let summed =
    Array.to_list parts
    |> List.map (fun l -> Counters.compute l ~h:3 ~pairs)
    |> function
    | [] -> assert false
    | first :: rest -> List.fold_left Counters.add first rest
  in
  Alcotest.(check (array int)) "a additive" whole.Counters.a summed.Counters.a;
  Alcotest.(check (array int)) "b additive" whole.Counters.b summed.Counters.b

(* --- link strength -------------------------------------------------------- *)

let test_eq1 () =
  let log = small_log () in
  let ct = Counters.compute log ~h:3 ~pairs:[| (0, 1); (2, 0) |] in
  Alcotest.(check (float 1e-9)) "p(0,1) = 2/3" (2. /. 3.) (Link_strength.eq1 ct ~k:0);
  Alcotest.(check (float 1e-9)) "p(2,0) = 0/1" 0. (Link_strength.eq1 ct ~k:1)

let test_eq1_zero_denominator () =
  let log = Log.of_records ~num_users:2 ~num_actions:1 [ r 1 0 0 ] in
  let ct = Counters.compute log ~h:2 ~pairs:[| (0, 1) |] in
  Alcotest.(check (float 1e-9)) "a_i = 0 gives p = 0" 0. (Link_strength.eq1 ct ~k:0)

let test_eq2_uniform_equals_eq1 () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:100 in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 25; seeds_per_action = 1; max_delay = 3 } in
  let ct = Counters.compute_graph log ~h:4 g in
  let w = Link_strength.uniform_weights ~h:4 in
  let p1 = Link_strength.all_eq1 ct and p2 = Link_strength.all_eq2 ct w in
  Array.iteri
    (fun k v -> if abs_float (v -. p2.(k)) > 1e-9 then Alcotest.fail "eq2(uniform) <> eq1")
    p1

let test_eq2_decay_weights () =
  let w = Link_strength.linear_decay_weights ~h:4 in
  let wa = (w :> float array) in
  Alcotest.(check (float 1e-9)) "weights sum to h" 4. (Array.fold_left ( +. ) 0. wa);
  Alcotest.(check bool) "decreasing" true (wa.(0) > wa.(1) && wa.(1) > wa.(2) && wa.(2) > wa.(3));
  let we = Link_strength.exponential_decay_weights ~h:3 ~alpha:0.5 in
  let wea = (we :> float array) in
  Alcotest.(check (float 1e-9)) "exp weights sum to h" 3. (Array.fold_left ( +. ) 0. wea);
  Alcotest.(check (float 1e-9)) "exp ratio" 0.5 (wea.(1) /. wea.(0))

let test_eq2_favors_fast_followers () =
  (* Two followee-follower pairs, same b but different lags: decaying
     weights must rank the fast follower higher. *)
  let log =
    Log.of_records ~num_users:4 ~num_actions:2
      [ r 0 0 0; r 1 0 1 (* fast *); r 2 1 0; r 3 1 3 (* slow *) ]
  in
  let ct = Counters.compute log ~h:3 ~pairs:[| (0, 1); (2, 3) |] in
  let w = Link_strength.linear_decay_weights ~h:3 in
  Alcotest.(check bool) "fast > slow" true
    (Link_strength.eq2 ct w ~k:0 > Link_strength.eq2 ct w ~k:1);
  (* while eq1 sees them as equal *)
  Alcotest.(check (float 1e-9)) "eq1 ties" (Link_strength.eq1 ct ~k:0) (Link_strength.eq1 ct ~k:1)

let test_weights_validation () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Link_strength.weights_of_array: non-positive weight")
    (fun () -> ignore (Link_strength.weights_of_array [| 2.; -1.; 2. |]));
  Alcotest.check_raises "wrong sum"
    (Invalid_argument "Link_strength.weights_of_array: weights must sum to h")
    (fun () -> ignore (Link_strength.weights_of_array [| 1.; 1.; 2. |]))

let test_ground_truth_recovery () =
  (* With h >= max_delay, Eq. (1) recovers the planted probability
     exactly in expectation when each node has a single potential
     influencer (in a dense graph the estimator is diluted: a node
     already activated by another parent cannot "follow").  A star
     rooted at node 0 gives that single-parent structure: whenever 0 is
     active at time 0, each leaf independently follows with p_true. *)
  let s = st () in
  let n = 10 in
  let g = Digraph.create ~n (List.init (n - 1) (fun j -> (0, j + 1))) in
  let p_true = 0.45 in
  let planted = Cascade.uniform_probabilities ~p:p_true g in
  let log =
    Cascade.generate s planted { Cascade.num_actions = 3000; seeds_per_action = 1; max_delay = 3 }
  in
  let ct = Counters.compute_graph log ~h:3 g in
  let strengths = Link_strength.all_eq1 ct in
  let mean = Array.fold_left ( +. ) 0. strengths /. float_of_int (Array.length strengths) in
  Alcotest.(check bool)
    (Printf.sprintf "mean estimate %.3f near planted %.3f" mean p_true)
    true
    (abs_float (mean -. p_true) < 0.05)

(* --- counter engines: sparse and streaming ------------------------------------ *)

module Stream = Spe_influence.Stream

let counters_equal (x : Counters.t) (y : Counters.t) =
  x.Counters.a = y.Counters.a && x.Counters.b = y.Counters.b && x.Counters.c = y.Counters.c
  && x.Counters.both = y.Counters.both

let random_workload_with_pairs s =
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:80 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 15; seeds_per_action = 1; max_delay = 3 } in
  let pairs = Array.of_list (Digraph.edges g) in
  (log, pairs)

let test_sparse_matches_dense () =
  let s = st () in
  for _ = 1 to 20 do
    let log, pairs = random_workload_with_pairs s in
    let dense = Counters.compute log ~h:3 ~pairs in
    let sparse = Counters.compute_sparse log ~h:3 ~pairs in
    let auto = Counters.compute_auto log ~h:3 ~pairs in
    if not (counters_equal dense sparse) then Alcotest.fail "sparse <> dense";
    if not (counters_equal dense auto) then Alcotest.fail "auto <> dense"
  done

let test_stream_matches_batch () =
  let s = st () in
  for _ = 1 to 20 do
    let log, pairs = random_workload_with_pairs s in
    let acc =
      Stream.create ~num_users:(Log.num_users log) ~num_actions:(Log.num_actions log) ~h:3
        ~pairs ()
    in
    (* Ingest in a shuffled order to exercise out-of-order arrival. *)
    let recs = Array.of_list (Log.records log) in
    let perm = Spe_rng.Perm.random s (Array.length recs) in
    Array.iter (Stream.add acc) (Spe_rng.Perm.permute_array perm recs);
    Alcotest.(check int) "record count" (Log.size log) (Stream.records acc);
    if not (counters_equal (Counters.compute log ~h:3 ~pairs) (Stream.snapshot acc)) then
      Alcotest.fail "stream <> batch"
  done

let test_stream_snapshot_isolated () =
  (* A snapshot must not alias the accumulator. *)
  let pairs = [| (0, 1) |] in
  let acc = Stream.create ~num_users:2 ~num_actions:2 ~h:2 ~pairs () in
  Stream.add acc { Log.user = 0; action = 0; time = 0 };
  let snap = Stream.snapshot acc in
  Stream.add acc { Log.user = 1; action = 0; time = 1 };
  Alcotest.(check int) "old snapshot unchanged" 0 snap.Counters.b.(0);
  Alcotest.(check int) "accumulator advanced" 1 (Stream.snapshot acc).Counters.b.(0)

let test_stream_rejects_duplicates () =
  let acc = Stream.create ~num_users:2 ~num_actions:1 ~h:2 ~pairs:[| (0, 1) |] () in
  Stream.add acc { Log.user = 0; action = 0; time = 0 };
  Alcotest.check_raises "duplicate" (Stream.Duplicate_record { user = 0; action = 0 })
    (fun () -> Stream.add acc { Log.user = 0; action = 0; time = 5 })

(* --- jaccard and partial credit ---------------------------------------------- *)

module Credit = Spe_influence.Credit

let test_jaccard_hand_computed () =
  let log = small_log () in
  (* Pair (0,1): a_0 = 3, a_1 = 3, both = 3 (actions 0, 1, 2), b^3 = 2:
     jaccard = 2 / (3 + 3 - 3) = 2/3.  Pair (0,2): both = 1 (action 0),
     b = 0 at h = 3: jaccard = 0 / (3 + 1 - 1) = 0. *)
  let ct = Counters.compute log ~h:3 ~pairs:[| (0, 1); (0, 2) |] in
  Alcotest.(check (array int)) "both counters" [| 3; 1 |] ct.Counters.both;
  Alcotest.(check (float 1e-9)) "jaccard(0,1)" (2. /. 3.) (Link_strength.jaccard ct ~k:0);
  Alcotest.(check (float 1e-9)) "jaccard(0,2)" 0. (Link_strength.jaccard ct ~k:1)

let test_jaccard_bounded () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:80 in
  let planted = Cascade.uniform_probabilities ~p:0.5 g in
  let log = Cascade.generate s planted Cascade.default_params in
  let ct = Counters.compute_graph log ~h:3 g in
  Array.iter
    (fun v -> if v < 0. || v > 1. then Alcotest.fail "jaccard out of [0,1]")
    (Link_strength.all_jaccard ct)

let test_jaccard_penalises_busy_targets () =
  (* Same successes, but one follower is hyperactive: Jaccard demotes
     that link while Eq. 1 cannot tell them apart. *)
  let recs =
    (* u0 does actions 0..3; v1 follows on all of them and does nothing
       else; v2 follows on all of them and also does actions 4..9. *)
    List.concat_map
      (fun a -> [ r 0 a 0; r 1 a 1; r 2 a 1 ])
      [ 0; 1; 2; 3 ]
    @ List.map (fun a -> r 2 a 0) [ 4; 5; 6; 7; 8; 9 ]
  in
  let log = Log.of_records ~num_users:3 ~num_actions:10 recs in
  let ct = Counters.compute log ~h:2 ~pairs:[| (0, 1); (0, 2) |] in
  Alcotest.(check (float 1e-9)) "eq1 ties"
    (Link_strength.eq1 ct ~k:0) (Link_strength.eq1 ct ~k:1);
  Alcotest.(check bool) "jaccard separates" true
    (Link_strength.jaccard ct ~k:0 > Link_strength.jaccard ct ~k:1)

let test_partial_credit_splits () =
  (* Two parents activate together; the child follows: each parent gets
     half a credit. *)
  let g = Digraph.create ~n:3 [ (0, 2); (1, 2) ] in
  let log = Log.of_records ~num_users:3 ~num_actions:1 [ r 0 0 0; r 1 0 0; r 2 0 1 ] in
  let table = Credit.credits log g ~h:2 in
  Alcotest.(check (float 1e-9)) "half credit" 0.5 (Hashtbl.find table (0, 2));
  Alcotest.(check (float 1e-9)) "half credit" 0.5 (Hashtbl.find table (1, 2))

let test_partial_credit_equals_eq1_single_parent () =
  (* Single-parent structure: credits are whole, so p_pc = Eq. 1. *)
  let s = st () in
  let n = 8 in
  let g = Digraph.create ~n (List.init (n - 1) (fun j -> (0, j + 1))) in
  let planted = Cascade.uniform_probabilities ~p:0.5 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 200; seeds_per_action = 1; max_delay = 2 } in
  let pc = Credit.strengths log g ~h:2 in
  let ct = Counters.compute_graph log ~h:2 g in
  let eq1 = Link_strength.all_eq1 ct in
  List.iteri
    (fun k (_, p) ->
      if abs_float (p -. eq1.(k)) > 1e-9 then Alcotest.fail "pc <> eq1 on star")
    pc

let test_partial_credit_total_preserved () =
  (* Credits over all arcs sum to the number of influenced activations
     (each splits one unit). *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
  let planted = Cascade.uniform_probabilities ~p:0.5 g in
  let log = Cascade.generate s planted Cascade.default_params in
  let table = Credit.credits log g ~h:3 in
  let total = Hashtbl.fold (fun _ c acc -> acc +. c) table 0. in
  Alcotest.(check bool) "integral total" true (abs_float (total -. Float.round total) < 1e-9)

(* --- discretization ------------------------------------------------------------ *)

module Discretize = Spe_actionlog.Discretize

let test_rebin () =
  let log = Log.of_records ~num_users:2 ~num_actions:2
      [ r 0 0 100; r 1 0 137; r 0 1 19 ] in
  let binned = Discretize.rebin log ~step:50 in
  Alcotest.(check (option int)) "bin 2" (Some 2) (Log.time_of binned ~user:0 ~action:0);
  Alcotest.(check (option int)) "bin 2 again" (Some 2) (Log.time_of binned ~user:1 ~action:0);
  Alcotest.(check (option int)) "bin 0" (Some 0) (Log.time_of binned ~user:0 ~action:1)

let test_rebin_step_one_identity () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:10 ~m:30 in
  let planted = Cascade.uniform_probabilities ~p:0.5 g in
  let log = Cascade.generate s planted Cascade.default_params in
  Alcotest.(check bool) "identity" true (Log.equal log (Discretize.rebin log ~step:1))

let test_rebin_coarsens_counters () =
  (* A follow at distance 120 invisible at h=3 on raw stamps becomes a
     1-step follow after rebinning by 100. *)
  let log = Log.of_records ~num_users:2 ~num_actions:1 [ r 0 0 50; r 1 0 170 ] in
  Alcotest.(check int) "raw: outside window" 0 (Counters.b_single log ~h:3 ~i:0 ~j:1);
  let binned = Discretize.rebin log ~step:100 in
  Alcotest.(check int) "binned: inside window" 1 (Counters.b_single binned ~h:3 ~i:0 ~j:1)

let test_jitter_bounds () =
  let s = st () in
  let log = Log.of_records ~num_users:2 ~num_actions:2 [ r 0 0 10; r 1 1 0 ] in
  for _ = 1 to 50 do
    let j = Discretize.jitter s log ~amount:3 in
    List.iter
      (fun (rc : Log.record) ->
        if rc.Log.time < 0 then Alcotest.fail "negative time after jitter";
        let original = if rc.Log.user = 0 then 10 else 0 in
        if abs (rc.Log.time - original) > 3 && original > 3 then
          Alcotest.fail "jitter exceeded amount")
      (Log.records j)
  done

let test_span () =
  Alcotest.(check int) "empty" 0 (Discretize.span (Log.empty ~num_users:2 ~num_actions:1));
  let log = Log.of_records ~num_users:2 ~num_actions:2 [ r 0 0 5; r 1 1 42 ] in
  Alcotest.(check int) "span" 37 (Discretize.span log)

(* --- propagation / scores -------------------------------------------------- *)

let test_propagation_graph () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let log = small_log () in
  (* action 0: u0@1, u1@2, u2@5; arcs (0,1) d=1, (1,2) d=3, (0,2) d=4. *)
  let pg = Propagation.of_log log g ~action:0 in
  Alcotest.(check int) "three arcs" 3 (Array.length pg.Propagation.arcs);
  let expect =
    [
      { Propagation.src = 0; dst = 1; delta = 1 };
      { Propagation.src = 0; dst = 2; delta = 4 };
      { Propagation.src = 1; dst = 2; delta = 3 };
    ]
  in
  Alcotest.(check bool) "arc labels" true (Array.to_list pg.Propagation.arcs = expect)

let test_propagation_excludes_wrong_direction () =
  let g = Digraph.create ~n:3 [ (0, 1) ] in
  (* u1 acts before u0: no arc despite the social link. *)
  let log = Log.of_records ~num_users:3 ~num_actions:1 [ r 1 0 1; r 0 0 5 ] in
  let pg = Propagation.of_log log g ~action:0 in
  Alcotest.(check int) "no arc" 0 (Array.length pg.Propagation.arcs)

let test_sphere () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let log =
    Log.of_records ~num_users:4 ~num_actions:1 [ r 0 0 0; r 1 0 2; r 2 0 4; r 3 0 10 ]
  in
  let pg = Propagation.of_log log g ~action:0 in
  (* Labels: (0,1)=2, (1,2)=2, (2,3)=6. *)
  Alcotest.(check (list int)) "tau=4" [ 1; 2 ] (Propagation.sphere pg ~src:0 ~tau:4);
  Alcotest.(check (list int)) "tau=10" [ 1; 2; 3 ] (Propagation.sphere pg ~src:0 ~tau:10);
  Alcotest.(check (list int)) "tau=1" [] (Propagation.sphere pg ~src:0 ~tau:1);
  Alcotest.(check int) "sphere excludes src" 2 (Propagation.sphere_size pg ~src:0 ~tau:4)

let test_score_hand_computed () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  (* action 0: 0@0, 1@1, 2@2; action 1: 0@0. *)
  let log = Log.of_records ~num_users:3 ~num_actions:2 [ r 0 0 0; r 1 0 1; r 2 0 2; r 0 1 0 ] in
  let scores = Propagation.score log g ~tau:5 in
  (* score(0) = |{1,2}| / a_0 = 2/2 = 1; score(1) = 1/1; score(2) = 0/1. *)
  Alcotest.(check (float 1e-9)) "score 0" 1. scores.(0);
  Alcotest.(check (float 1e-9)) "score 1" 1. scores.(1);
  Alcotest.(check (float 1e-9)) "score 2" 0. scores.(2)

let test_score_zero_activity () =
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let log = Log.of_records ~num_users:2 ~num_actions:1 [ r 1 0 0 ] in
  let scores = Propagation.score log g ~tau:5 in
  Alcotest.(check (float 1e-9)) "inactive user scores 0" 0. scores.(0)

let test_score_seeds_score_higher () =
  (* In cascades, seeds sit at the top of propagation trees: their
     average sphere should beat the population average. *)
  let s = st () in
  let g = Generate.barabasi_albert s ~n:60 ~m:3 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 60; seeds_per_action = 1; max_delay = 2 } in
  let scores = Propagation.score log g ~tau:20 in
  let avg = Array.fold_left ( +. ) 0. scores /. 60. in
  let best = Array.fold_left max neg_infinity scores in
  Alcotest.(check bool) "a clear leader exists" true (best > 2. *. avg && best > 0.)

let test_of_arcs_validation () =
  Alcotest.check_raises "non-positive label"
    (Invalid_argument "Propagation.of_arcs: label must be positive")
    (fun () ->
      ignore (Propagation.of_arcs ~n:2 ~action:0 [ { Propagation.src = 0; dst = 1; delta = 0 } ]))

(* --- maximisation ----------------------------------------------------------- *)

let test_spread_deterministic_graph () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 1.) } in
  let s = st () in
  Alcotest.(check (float 1e-9)) "p=1 chain spreads fully" 3.
    (Maximize.spread s model ~seeds:[ 0 ] ~samples:10);
  Alcotest.(check (float 1e-9)) "tail seed" 1. (Maximize.spread s model ~seeds:[ 2 ] ~samples:10)

let test_greedy_picks_root () =
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 1.) } in
  let s = st () in
  let seeds, spread = Maximize.greedy s model ~k:1 ~samples:20 in
  Alcotest.(check (list int)) "root chosen" [ 0 ] seeds;
  Alcotest.(check (float 1e-9)) "full spread" 4. spread

let test_celf_matches_greedy () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:30 ~m:120 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.2) } in
  let sg = State.create ~seed:99 () and sc = State.create ~seed:99 () in
  let _, spread_g = Maximize.greedy sg model ~k:3 ~samples:300 in
  let evals_greedy = Maximize.evaluations () in
  let _, spread_c = Maximize.celf sc model ~k:3 ~samples:300 in
  let evals_celf = Maximize.evaluations () in
  Alcotest.(check bool) "similar spread" true (abs_float (spread_g -. spread_c) /. spread_g < 0.15);
  Alcotest.(check bool) "celf does fewer evaluations" true (evals_celf < evals_greedy)

let test_of_strengths_clamps () =
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let model = Maximize.of_strengths g [ ((0, 1), 1.7) ] in
  Alcotest.(check (float 1e-9)) "clamped to 1" 1. (model.Maximize.probability 0 1);
  Alcotest.(check (float 1e-9)) "missing arc is 0" 0. (model.Maximize.probability 1 0)

(* --- RIS ----------------------------------------------------------------------- *)

module Ris = Spe_influence.Ris

let test_ris_singleton_chain () =
  (* p = 1 chain 0 -> 1 -> 2: every RR set targeting node v contains
     {0..v}; the best single seed is node 0. *)
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 1.) } in
  let s = st () in
  let rr = Ris.sample s model ~count:300 in
  Alcotest.(check (list int)) "root selected" [ 0 ] (Ris.select rr ~k:1);
  Alcotest.(check (float 1e-9)) "root covers everything" 1. (Ris.coverage rr [ 0 ]);
  Alcotest.(check bool) "spread estimate = n" true
    (abs_float (Ris.estimate_spread rr ~n:3 [ 0 ] -. 3.) < 1e-9)

let test_ris_spread_matches_monte_carlo () =
  (* RIS spread estimates agree with forward Monte-Carlo. *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:30 ~m:120 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.15) } in
  let rr = Ris.sample s model ~count:20_000 in
  let seeds = [ 0; 7 ] in
  let ris_est = Ris.estimate_spread rr ~n:30 seeds in
  let mc = Maximize.spread (State.create ~seed:5 ()) model ~seeds ~samples:20_000 in
  Alcotest.(check bool)
    (Printf.sprintf "ris %.2f vs mc %.2f" ris_est mc)
    true
    (abs_float (ris_est -. mc) < 0.15 *. mc)

let test_ris_select_competitive_with_celf () =
  let s = st () in
  let g = Generate.barabasi_albert s ~n:40 ~m:3 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.1) } in
  let rr = Ris.sample s model ~count:10_000 in
  let ris_seeds = Ris.select rr ~k:3 in
  let celf_seeds, _ = Maximize.celf (State.create ~seed:9 ()) model ~k:3 ~samples:200 in
  let eval seeds = Maximize.spread (State.create ~seed:10 ()) model ~seeds ~samples:3000 in
  let ris_spread = eval ris_seeds and celf_spread = eval celf_seeds in
  Alcotest.(check bool)
    (Printf.sprintf "ris %.2f within 10%% of celf %.2f" ris_spread celf_spread)
    true
    (ris_spread > 0.9 *. celf_spread)

let test_ris_zero_probability () =
  (* Dead model: every RR set is a singleton, best seed covers 1/n. *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:10 ~m:30 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.) } in
  let rr = Ris.sample s model ~count:500 in
  Alcotest.(check (float 1e-9)) "singleton sets" 1. (Ris.average_size rr);
  Alcotest.(check bool) "single seed covers ~1/10" true (Ris.coverage rr [ 0 ] < 0.25)

let test_ris_validation () =
  let s = st () in
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.5) } in
  Alcotest.check_raises "count" (Invalid_argument "Ris.sample: need at least one set")
    (fun () -> ignore (Ris.sample s model ~count:0));
  let rr = Ris.sample s model ~count:10 in
  Alcotest.check_raises "k" (Invalid_argument "Ris.select: k out of range") (fun () ->
      ignore (Ris.select rr ~k:5))

(* --- held-out evaluation --------------------------------------------------------- *)

module Evaluate = Spe_influence.Evaluate

let test_split_partitions_traces () =
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:20 ~m:80 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 40; seeds_per_action = 1; max_delay = 2 } in
  let { Evaluate.train; test } = Evaluate.split_by_action s log ~train_fraction:0.6 in
  Alcotest.(check int) "records partitioned" (Log.size log) (Log.size train + Log.size test);
  (* No action straddles the split. *)
  List.iter
    (fun a ->
      if Log.by_action train a <> [] && Log.by_action test a <> [] then
        Alcotest.failf "action %d straddles the split" a)
    (List.init 40 (fun a -> a))

let test_score_prefers_truth () =
  (* On held-out traces, the planted model must outscore both a too-low
     and a too-high constant model. *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:25 ~m:120 in
  let p_true = 0.35 in
  let planted = Cascade.uniform_probabilities ~p:p_true g in
  let log = Cascade.generate s planted { Cascade.num_actions = 120; seeds_per_action = 2; max_delay = 2 } in
  let eval p = (Evaluate.score ~probability:(fun _ _ -> p) log g ~h:2).Evaluate.log_likelihood in
  let at_truth = eval p_true in
  Alcotest.(check bool) "truth beats underestimate" true (at_truth > eval 0.05);
  Alcotest.(check bool) "truth beats overestimate" true (at_truth > eval 0.9)

let test_generalisation_improves_with_data () =
  (* The paper's accuracy motivation: more training traces -> better
     held-out likelihood of the learned model. *)
  let s = st () in
  let g = Generate.erdos_renyi_gnm s ~n:25 ~m:120 in
  let planted = Cascade.uniform_probabilities ~p:0.35 g in
  let test_log =
    Cascade.generate (State.create ~seed:201 ()) planted
      { Cascade.num_actions = 150; seeds_per_action = 2; max_delay = 2 }
  in
  let heldout traces =
    let train =
      Cascade.generate s planted { Cascade.num_actions = traces; seeds_per_action = 2; max_delay = 2 }
    in
    let ct = Counters.compute_graph train ~h:2 g in
    let est = Link_strength.all_eq1 ct in
    let table = Hashtbl.create 64 in
    Array.iteri (fun k pair -> Hashtbl.replace table pair est.(k)) ct.Counters.pairs;
    let probability u v = Option.value ~default:0.05 (Hashtbl.find_opt table (u, v)) in
    (Evaluate.score ~probability test_log g ~h:2).Evaluate.log_likelihood
  in
  let small = heldout 5 and large = heldout 300 in
  Alcotest.(check bool)
    (Printf.sprintf "ll %.4f (5 traces) < %.4f (300 traces)" small large)
    true (small < large)

let test_score_validation () =
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let empty = Log.empty ~num_users:2 ~num_actions:1 in
  Alcotest.check_raises "no exposures" (Invalid_argument "Evaluate.score: no exposures in the log")
    (fun () -> ignore (Evaluate.score ~probability:(fun _ _ -> 0.5) empty g ~h:2))

let test_ris_select_auto () =
  let s = st () in
  let g = Generate.barabasi_albert s ~n:40 ~m:3 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.1) } in
  let seeds, drawn = Ris.select_auto s model ~k:3 ~initial:500 () in
  Alcotest.(check int) "three seeds" 3 (List.length seeds);
  Alcotest.(check bool) "at least two rounds drawn" true (drawn >= 2 * 500);
  (* Quality: within 15% of a large fixed-budget run. *)
  let big = Ris.sample (State.create ~seed:17 ()) model ~count:30_000 in
  let ref_seeds = Ris.select big ~k:3 in
  let eval sds = Maximize.spread (State.create ~seed:18 ()) model ~seeds:sds ~samples:2000 in
  Alcotest.(check bool) "competitive quality" true (eval seeds > 0.85 *. eval ref_seeds)

(* --- QCheck ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"b monotone in h" ~count:60 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
        let planted = Cascade.uniform_probabilities ~p:0.5 g in
        let log = Cascade.generate s planted { Cascade.num_actions = 10; seeds_per_action = 1; max_delay = 4 } in
        let pairs = Array.of_list (Digraph.edges g) in
        let c2 = Counters.compute log ~h:2 ~pairs and c5 = Counters.compute log ~h:5 ~pairs in
        Array.for_all2 (fun b2 b5 -> b2 <= b5) c2.Counters.b c5.Counters.b);
    Test.make ~name:"strengths lie in [0, 1]" ~count:60 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
        let planted = Cascade.uniform_probabilities ~p:0.5 g in
        let log = Cascade.generate s planted Cascade.default_params in
        let ct = Counters.compute_graph log ~h:3 g in
        Array.for_all (fun p -> p >= 0. && p <= 1.) (Link_strength.all_eq1 ct));
    Test.make ~name:"sphere monotone in tau" ~count:60 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
        let planted = Cascade.uniform_probabilities ~p:0.5 g in
        let log = Cascade.generate s planted Cascade.default_params in
        let pg = Propagation.of_log log g ~action:0 in
        List.for_all
          (fun v ->
            Propagation.sphere_size pg ~src:v ~tau:2
            <= Propagation.sphere_size pg ~src:v ~tau:6)
          (List.init 15 (fun v -> v)));
    (* The windowed-stream invariant behind the epoch-delta pipeline:
       whatever bounded out-of-order arrival order a seeded source
       produces, the accumulator's snapshot equals a from-scratch batch
       compute over the records still in the window.  (Late arrivals —
       delivered after their own expiry — are skipped by the
       accumulator and excluded by the filter for the same reason:
       their time is at most [now - w].) *)
    Test.make ~name:"windowed stream = window-filtered batch" ~count:40 small_nat
      (fun seed ->
        let module Source = Spe_actionlog.Source in
        let s = State.create ~seed:(succ seed) () in
        let g = Generate.erdos_renyi_gnm s ~n:15 ~m:60 in
        let planted = Cascade.uniform_probabilities ~p:0.5 g in
        let log =
          Cascade.generate s planted
            { Cascade.num_actions = 10; seeds_per_action = 1; max_delay = 4 }
        in
        let pairs = Array.of_list (Digraph.edges g) in
        let w = 1 + State.next_int s 8 in
        let jitter = State.next_int s 4 in
        let src =
          Source.create
            (State.create ~seed:(seed + 7) ())
            log ~rate:0.7 ~burstiness:0.3 ~jitter ()
        in
        let acc =
          Stream.create ~window:w ~num_users:(Log.num_users log)
            ~num_actions:(Log.num_actions log) ~h:3 ~pairs ()
        in
        List.iter
          (fun (r : Log.record) ->
            Stream.advance acc ~now:(max (Stream.now acc) r.Log.time);
            Stream.add acc r)
          (Source.take_until src ~arrival:max_int);
        let now = Stream.now acc in
        let windowed =
          Log.of_records ~num_users:(Log.num_users log)
            ~num_actions:(Log.num_actions log)
            (List.filter (fun (r : Log.record) -> r.Log.time > now - w) (Log.records log))
        in
        counters_equal (Counters.compute windowed ~h:3 ~pairs) (Stream.snapshot acc));
    Test.make ~name:"score denominator uses a_i" ~count:40 small_nat
      (fun seed ->
        let s = State.create ~seed () in
        let g = Generate.erdos_renyi_gnm s ~n:12 ~m:40 in
        let planted = Cascade.uniform_probabilities ~p:0.4 g in
        let log = Cascade.generate s planted Cascade.default_params in
        let scores = Propagation.score log g ~tau:10 in
        let a = Log.user_activity log in
        Array.for_all2 (fun sc ai -> (ai > 0) || sc = 0.) scores a);
  ]

let () =
  Alcotest.run "spe_influence"
    [
      ( "counters",
        [
          Alcotest.test_case "hand computed" `Quick test_counters_hand_computed;
          Alcotest.test_case "window sensitivity" `Quick test_counters_window_sensitivity;
          Alcotest.test_case "b = sum c" `Quick test_counters_b_equals_sum_c;
          Alcotest.test_case "simultaneity excluded" `Quick test_counters_simultaneous_not_counted;
          Alcotest.test_case "add" `Quick test_counters_add;
          Alcotest.test_case "exclusive-split additivity" `Quick test_counters_split_sum_identity;
        ] );
      ( "link-strength",
        [
          Alcotest.test_case "eq1" `Quick test_eq1;
          Alcotest.test_case "eq1 zero denominator" `Quick test_eq1_zero_denominator;
          Alcotest.test_case "eq2 uniform = eq1" `Quick test_eq2_uniform_equals_eq1;
          Alcotest.test_case "decay weights" `Quick test_eq2_decay_weights;
          Alcotest.test_case "decay favours fast follows" `Quick test_eq2_favors_fast_followers;
          Alcotest.test_case "weights validation" `Quick test_weights_validation;
          Alcotest.test_case "ground truth recovery" `Slow test_ground_truth_recovery;
        ] );
      ( "counter-engines",
        [
          Alcotest.test_case "sparse = dense" `Quick test_sparse_matches_dense;
          Alcotest.test_case "stream = batch" `Quick test_stream_matches_batch;
          Alcotest.test_case "snapshot isolation" `Quick test_stream_snapshot_isolated;
          Alcotest.test_case "duplicate rejection" `Quick test_stream_rejects_duplicates;
        ] );
      ( "estimator-variants",
        [
          Alcotest.test_case "jaccard hand computed" `Quick test_jaccard_hand_computed;
          Alcotest.test_case "jaccard bounded" `Quick test_jaccard_bounded;
          Alcotest.test_case "jaccard vs busy targets" `Quick test_jaccard_penalises_busy_targets;
          Alcotest.test_case "partial credit splits" `Quick test_partial_credit_splits;
          Alcotest.test_case "pc = eq1 on single parent" `Quick test_partial_credit_equals_eq1_single_parent;
          Alcotest.test_case "pc total preserved" `Quick test_partial_credit_total_preserved;
        ] );
      ( "discretization",
        [
          Alcotest.test_case "rebin" `Quick test_rebin;
          Alcotest.test_case "rebin identity" `Quick test_rebin_step_one_identity;
          Alcotest.test_case "rebin widens windows" `Quick test_rebin_coarsens_counters;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "span" `Quick test_span;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "PG construction" `Quick test_propagation_graph;
          Alcotest.test_case "direction of time" `Quick test_propagation_excludes_wrong_direction;
          Alcotest.test_case "spheres" `Quick test_sphere;
          Alcotest.test_case "score hand computed" `Quick test_score_hand_computed;
          Alcotest.test_case "score zero activity" `Quick test_score_zero_activity;
          Alcotest.test_case "leaders emerge" `Quick test_score_seeds_score_higher;
          Alcotest.test_case "of_arcs validation" `Quick test_of_arcs_validation;
        ] );
      ( "ris",
        [
          Alcotest.test_case "chain" `Quick test_ris_singleton_chain;
          Alcotest.test_case "spread vs monte carlo" `Quick test_ris_spread_matches_monte_carlo;
          Alcotest.test_case "competitive with celf" `Slow test_ris_select_competitive_with_celf;
          Alcotest.test_case "dead model" `Quick test_ris_zero_probability;
          Alcotest.test_case "validation" `Quick test_ris_validation;
        ] );
      ( "maximize",
        [
          Alcotest.test_case "deterministic spread" `Quick test_spread_deterministic_graph;
          Alcotest.test_case "greedy picks root" `Quick test_greedy_picks_root;
          Alcotest.test_case "celf vs greedy" `Slow test_celf_matches_greedy;
          Alcotest.test_case "of_strengths" `Quick test_of_strengths_clamps;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "split partitions traces" `Quick test_split_partitions_traces;
          Alcotest.test_case "score prefers truth" `Quick test_score_prefers_truth;
          Alcotest.test_case "generalisation vs data" `Quick test_generalisation_improves_with_data;
          Alcotest.test_case "score validation" `Quick test_score_validation;
          Alcotest.test_case "ris select_auto" `Slow test_ris_select_auto;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
