(* Tests for the second estimand family: the fixed-point rank oracle
   (precision against the exact float recursion, damping edge cases),
   the distributed Protocol_rank plan (bit-identical to the plaintext
   oracle across engines and shard counts), the DP release layer
   (replayable seeded sampler, correct Laplace moments, exact
   degeneration at epsilon = infinity), and the typed validation
   errors beside the existing pipeline checks. *)

module State = Spe_rng.State
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Oracle = Spe_rank.Oracle
module Protocol_rank = Spe_rank.Protocol_rank
module Dp_release = Spe_privacy.Dp_release
module Proto = Spe_serve.Serve_proto
module Client = Spe_serve.Client

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let aggregate_activity ~n logs =
  let a = Array.make n 0 in
  Array.iter
    (fun l -> Array.iteri (fun i v -> a.(i) <- a.(i) + v) (Log.user_activity l))
    logs;
  a

let small_config ?(mode = Oracle.Pagerank) ?(iterations = 4) ?(fbits = 14) () =
  {
    Protocol_rank.oracle = { Oracle.default_config with Oracle.mode; iterations; fbits };
    modulus = 1 lsl 40;
  }

(* --- oracle ------------------------------------------------------------------ *)

let test_oracle_precision_on_edge_cases () =
  let cases =
    [
      (* A dangling sink: node 2 has no out-edges. *)
      ("dangling", Digraph.create ~n:3 [ (0, 1); (1, 2) ], [| 3; 0; 1 |]);
      (* Two disconnected components. *)
      ("disconnected", Digraph.create ~n:4 [ (0, 1); (1, 0); (2, 3) ], [| 1; 2; 3; 4 |]);
      (* A single node with no edges at all. *)
      ("singleton", Digraph.create ~n:1 [], [| 5 |]);
      (* Entirely zero activity: the smoothed teleport still works. *)
      ("zero-activity", Digraph.create ~n:2 [ (0, 1) ], [| 0; 0 |]);
    ]
  in
  List.iter
    (fun (label, g, activity) ->
      List.iter
        (fun config ->
          let fx = Oracle.to_floats config (Oracle.fixed config g ~activity) in
          let fl = Oracle.float_reference config g ~activity in
          let bound = Oracle.precision_bound config g in
          Array.iteri
            (fun i v ->
              checkb
                (Printf.sprintf "%s: node %d within the precision bound" label i)
                true
                (abs_float (v -. fl.(i)) <= bound))
            fx;
          (* Teleport keeps every node alive, disconnected or not. *)
          Array.iteri
            (fun i v ->
              checkb (Printf.sprintf "%s: node %d has positive rank" label i) true (v > 0.))
            fx)
        [
          { Oracle.default_config with Oracle.iterations = 8 };
          { Oracle.default_config with Oracle.mode = Oracle.Degree };
        ])
    cases

let test_oracle_zero_iterations_is_teleport () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let activity = [| 4; 0; 2 |] in
  let config = { Oracle.default_config with Oracle.iterations = 0 } in
  check
    Alcotest.(array int)
    "no iterations releases the teleport"
    (Oracle.teleport config ~n:3 ~activity)
    (Oracle.fixed config g ~activity)

let test_oracle_float_reference_mass () =
  let g = Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 0); (3, 0) ] in
  let fl =
    Oracle.float_reference
      { Oracle.default_config with Oracle.iterations = 30 }
      g ~activity:[| 1; 0; 3; 0; 7 |]
  in
  let total = Array.fold_left ( +. ) 0. fl in
  checkb "pagerank reference conserves unit mass" true (abs_float (total -. 1.) < 1e-9)

let test_oracle_degree_mode_orders_by_in_degree () =
  let g = Digraph.create ~n:4 [ (1, 0); (2, 0); (3, 0); (2, 1); (3, 1); (3, 2) ] in
  let config = { Oracle.default_config with Oracle.mode = Oracle.Degree } in
  let r = Oracle.fixed config g ~activity:[| 2; 2; 2; 2 |] in
  checkb "uniform activity: degree centrality orders by in-degree" true
    (r.(0) > r.(1) && r.(1) > r.(2) && r.(2) > r.(3))

let test_oracle_validation () =
  let expect_invalid label f =
    match f () with
    | _ -> Alcotest.fail (label ^ " should be rejected")
    | exception Invalid_argument _ -> ()
  in
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  expect_invalid "damping 1" (fun () ->
      Oracle.fixed { Oracle.default_config with Oracle.damping = 1. } g ~activity:[| 0; 0 |]);
  expect_invalid "negative damping" (fun () ->
      Oracle.validate { Oracle.default_config with Oracle.damping = -0.1 });
  expect_invalid "negative iterations" (fun () ->
      Oracle.validate { Oracle.default_config with Oracle.iterations = -1 });
  expect_invalid "fbits too large" (fun () ->
      Oracle.validate { Oracle.default_config with Oracle.fbits = 31 });
  expect_invalid "activity length" (fun () ->
      Oracle.fixed Oracle.default_config g ~activity:[| 1 |]);
  expect_invalid "negative activity" (fun () ->
      Oracle.fixed Oracle.default_config g ~activity:[| 1; -2 |])

(* --- the distributed protocol ------------------------------------------------ *)

let test_rank_matches_oracle_across_shards () =
  let config = small_config () in
  let seed = 402 in
  let g, logs = Util.workload ~seed ~n:12 ~edges:30 ~actions:6 ~m:3 in
  let expected =
    Oracle.fixed config.Protocol_rank.oracle g
      ~activity:(aggregate_activity ~n:(Digraph.n g) logs)
  in
  List.iter
    (fun shards ->
      let plan =
        Protocol_rank.plan (State.create ~seed:(seed + 1) ()) ~graph:g ~logs ~shards config
      in
      let r = Util.run_plan `Sim plan in
      check
        Alcotest.(array int)
        (Printf.sprintf "k = %d bit-identical to the oracle" shards)
        expected r.Protocol_rank.ranks_fx;
      check
        Alcotest.(array int)
        (Printf.sprintf "k = %d reconstructs the aggregate activity" shards)
        (aggregate_activity ~n:(Digraph.n g) logs)
        r.Protocol_rank.activity)
    [ 1; 2; 4 ]

let test_rank_cross_engine () =
  let config = small_config () in
  let seed = 404 in
  let g, logs = Util.workload ~seed ~n:12 ~edges:30 ~actions:6 ~m:3 in
  let expected =
    Oracle.fixed config.Protocol_rank.oracle g
      ~activity:(aggregate_activity ~n:(Digraph.n g) logs)
  in
  List.iter
    (fun (label, engine) ->
      List.iter
        (fun shards ->
          let plan =
            Protocol_rank.plan
              (State.create ~seed:(seed + 1) ())
              ~graph:g ~logs ~shards config
          in
          let r = Util.run_plan engine plan in
          check
            Alcotest.(array int)
            (Printf.sprintf "%s k = %d bit-identical to the oracle" label shards)
            expected r.Protocol_rank.ranks_fx)
        [ 1; 2; 4 ])
    [ ("sim", `Sim); ("memory", `Memory); ("socket", `Socket) ]

let test_rank_degree_mode_distributed () =
  let config = small_config ~mode:Oracle.Degree () in
  let seed = 406 in
  let g, logs = Util.workload ~seed ~n:10 ~edges:24 ~actions:5 ~m:2 in
  let plan =
    Protocol_rank.plan (State.create ~seed:(seed + 1) ()) ~graph:g ~logs ~shards:2 config
  in
  let r = Util.run_plan `Sim plan in
  check
    Alcotest.(array int)
    "degree mode bit-identical to the oracle"
    (Oracle.fixed config.Protocol_rank.oracle g
       ~activity:(aggregate_activity ~n:(Digraph.n g) logs))
    r.Protocol_rank.ranks_fx

let test_rank_validation () =
  let expect_invalid label f =
    match f () with
    | _ -> Alcotest.fail (label ^ " should be rejected")
    | exception Invalid_argument _ -> ()
  in
  let g, logs = Util.workload ~seed:408 ~n:8 ~edges:16 ~actions:5 ~m:2 in
  let st () = State.create ~seed:1 () in
  let config = small_config () in
  expect_invalid "one provider" (fun () ->
      Protocol_rank.plan (st ()) ~graph:g ~logs:[| logs.(0) |] ~shards:1 config);
  expect_invalid "zero shards" (fun () ->
      Protocol_rank.plan (st ()) ~graph:g ~logs ~shards:0 config);
  expect_invalid "empty graph" (fun () ->
      Protocol_rank.plan (st ()) ~graph:(Digraph.create ~n:0 []) ~logs ~shards:1 config);
  expect_invalid "universe mismatch" (fun () ->
      Protocol_rank.plan (st ())
        ~graph:(Digraph.create ~n:(Digraph.n g + 1) [])
        ~logs ~shards:1 config);
  expect_invalid "modulus below the scale" (fun () ->
      Protocol_rank.plan (st ()) ~graph:g ~logs ~shards:1
        { config with Protocol_rank.modulus = 1 lsl 10 })

(* A live 4-daemon deployment serving the Rank job kind: the
   spe-serve/3 reply must be bit-identical to the plaintext oracle,
   and the rank scrape gauges must advance. *)
let test_rank_daemon_job () =
  Util.with_deployment (fun client daemons _roster ~graph ~logs ->
      let iterations = 6 in
      let spec =
        {
          Proto.default_spec with
          Proto.pipeline = Proto.Rank;
          seed = 321;
          shards = 2;
          iterations;
          fbits = 16;
        }
      in
      let oracle_config =
        { Oracle.default_config with Oracle.iterations; fbits = 16 }
      in
      let expected =
        Oracle.fixed oracle_config graph
          ~activity:(aggregate_activity ~n:(Digraph.n graph) logs)
      in
      match Client.run_jobs client [ spec ] ~deadline:(Unix.gettimeofday () +. 60.) with
      | [ Client.Result (Proto.Rank_summary { ranks_fx; fbits }) ] ->
        check Alcotest.int "reply carries the spec's fbits" 16 fbits;
        check Alcotest.(array int) "bit-identical over live daemons" expected ranks_fx;
        check Alcotest.int "rank job gauge advanced" 1
          (Util.gauge daemons 0 "rank_jobs_completed");
        check Alcotest.int "iteration gauge advanced" iterations
          (Util.gauge daemons 0 "rank_iterations_run")
      | [ Client.Result (Proto.Failed { detail; _ }) ] ->
        Alcotest.fail ("rank job failed: " ^ detail)
      | _ -> Alcotest.fail "rank job did not complete")

(* --- the DP release ---------------------------------------------------------- *)

let dp ?(epsilon = 0.5) ?(sensitivity = 1.) ?(seed = 7) () =
  { Dp_release.epsilon; sensitivity; seed }

let test_dp_infinite_epsilon_is_exact () =
  let v = [| 0.5; -1.25; 3.125; 0. |] in
  let out = Dp_release.values (dp ~epsilon:infinity ()) v in
  checkb "epsilon = infinity is byte-for-byte exact" true (out = v);
  checkb "and a fresh copy" true (out != v);
  let rows = [ ((0, 1), 0.5); ((2, 0), 0.75) ] in
  checkb "strengths too" true (Dp_release.strengths (dp ~epsilon:infinity ()) rows = rows)

let test_dp_release_is_replayable () =
  let v = Array.init 32 (fun i -> float_of_int i /. 7.) in
  let a = Dp_release.values (dp ()) v in
  let b = Dp_release.values (dp ()) v in
  checkb "same seed replays byte for byte" true (a = b);
  let c = Dp_release.values (dp ~seed:8 ()) v in
  checkb "a different seed perturbs differently" true (c <> a);
  checkb "noise was actually added" true (a <> v)

let test_dp_public_entries_are_stable () =
  let v = Array.init 16 (fun i -> float_of_int i) in
  let all_private = Dp_release.values (dp ()) v in
  let half = Dp_release.values ~public:(fun i -> i mod 2 = 0) (dp ()) v in
  Array.iteri
    (fun i x ->
      if i mod 2 = 0 then check (Alcotest.float 0.) "public entry exact" v.(i) x
      else
        (* One draw per entry whether public or not: the private
           entries' noise must not shift when others go public. *)
        check (Alcotest.float 0.) "private entry noise unchanged" all_private.(i) x)
    half

let test_dp_hubs_predicate () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 0); (2, 0); (0, 2); (1, 2) ] in
  let public = Dp_release.hubs ~degree_threshold:3 g in
  checkb "hub-to-hub arc is public" true (public (0, 1));
  checkb "arc touching a low-degree node stays private" true (not (public (0, 3)))

let test_dp_mean_abs_error () =
  check (Alcotest.float 1e-12) "mae" 0.5
    (Dp_release.mean_abs_error [| 0.; 1. |] [| 0.5; 0.5 |]);
  check (Alcotest.float 1e-12) "mae on empty" 0. (Dp_release.mean_abs_error [||] [||]);
  (match Dp_release.mean_abs_error [| 0. |] [||] with
  | _ -> Alcotest.fail "length mismatch should be rejected"
  | exception Invalid_argument _ -> ())

let test_dp_validation () =
  List.iter
    (fun (label, params) ->
      match Dp_release.validate params with
      | _ -> Alcotest.fail (label ^ " should be rejected")
      | exception Invalid_argument _ -> ())
    [
      ("zero epsilon", dp ~epsilon:0. ());
      ("negative epsilon", dp ~epsilon:(-1.) ());
      ("nan epsilon", dp ~epsilon:nan ());
      ("zero sensitivity", dp ~sensitivity:0. ());
    ]

(* --- QCheck ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"fixed-point oracle within the precision bound" ~count:25
      (pair small_nat (int_range 0 8))
      (fun (seed, iterations) ->
        let g, logs = Util.workload ~seed ~n:10 ~edges:25 ~actions:6 ~m:2 in
        let activity = aggregate_activity ~n:(Digraph.n g) logs in
        List.for_all
          (fun config ->
            let fx = Oracle.to_floats config (Oracle.fixed config g ~activity) in
            let fl = Oracle.float_reference config g ~activity in
            let bound = Oracle.precision_bound config g in
            Array.for_all Fun.id
              (Array.mapi (fun i v -> abs_float (v -. fl.(i)) <= bound) fx))
          [
            { Oracle.default_config with Oracle.iterations };
            { Oracle.default_config with Oracle.iterations; fbits = 10 };
            { Oracle.default_config with Oracle.mode = Oracle.Degree };
          ]);
    Test.make ~name:"distributed rank equals the oracle on random workloads" ~count:8
      (triple small_nat (int_range 2 4) (oneofl [ 1; 2; 4 ]))
      (fun (seed, m, shards) ->
        let g, logs = Util.workload ~seed ~n:10 ~edges:25 ~actions:6 ~m in
        let config = small_config ~iterations:3 () in
        let plan =
          Protocol_rank.plan
            (State.create ~seed:(seed + 1) ())
            ~graph:g ~logs ~shards config
        in
        let r = Util.run_plan `Sim plan in
        r.Protocol_rank.ranks_fx
        = Oracle.fixed config.Protocol_rank.oracle g
            ~activity:(aggregate_activity ~n:(Digraph.n g) logs));
    Test.make ~name:"dp release replays and degenerates at infinity" ~count:20
      (pair small_nat (int_range 1 64))
      (fun (seed, len) ->
        let v = Array.init len (fun i -> float_of_int ((i * 13) mod 7) /. 3.) in
        let p = dp ~seed () in
        Dp_release.values p v = Dp_release.values p v
        && Dp_release.values { p with Dp_release.epsilon = infinity } v = v);
    Test.make ~name:"dp noise matches the Laplace moments" ~count:5
      (int_range 1 1000)
      (fun seed ->
        (* Laplace(b): mean 0, variance 2 b^2.  With n = 20000 draws the
           empirical moments concentrate well inside the tolerances. *)
        let epsilon = 0.5 and sensitivity = 1. in
        let b = sensitivity /. epsilon in
        let n = 20000 in
        let out =
          Dp_release.values (dp ~epsilon ~sensitivity ~seed ()) (Array.make n 0.)
        in
        let mean = Array.fold_left ( +. ) 0. out /. float_of_int n in
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. out
          /. float_of_int n
        in
        abs_float mean < 0.1 && abs_float (var -. (2. *. b *. b)) < 0.2 *. 2. *. b *. b);
  ]

let () =
  Alcotest.run "rank"
    [
      ( "oracle",
        [
          Alcotest.test_case "edge-case precision" `Quick test_oracle_precision_on_edge_cases;
          Alcotest.test_case "zero iterations" `Quick test_oracle_zero_iterations_is_teleport;
          Alcotest.test_case "reference mass" `Quick test_oracle_float_reference_mass;
          Alcotest.test_case "degree ordering" `Quick test_oracle_degree_mode_orders_by_in_degree;
          Alcotest.test_case "validation" `Quick test_oracle_validation;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "shards match oracle" `Quick test_rank_matches_oracle_across_shards;
          Alcotest.test_case "cross-engine" `Quick test_rank_cross_engine;
          Alcotest.test_case "degree mode" `Quick test_rank_degree_mode_distributed;
          Alcotest.test_case "validation" `Quick test_rank_validation;
          Alcotest.test_case "daemon job" `Quick test_rank_daemon_job;
        ] );
      ( "dp-release",
        [
          Alcotest.test_case "infinite epsilon" `Quick test_dp_infinite_epsilon_is_exact;
          Alcotest.test_case "replayable" `Quick test_dp_release_is_replayable;
          Alcotest.test_case "public entries" `Quick test_dp_public_entries_are_stable;
          Alcotest.test_case "hubs predicate" `Quick test_dp_hubs_predicate;
          Alcotest.test_case "mean abs error" `Quick test_dp_mean_abs_error;
          Alcotest.test_case "validation" `Quick test_dp_validation;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
