(* Tests for the privacy analysis: the Theorem 4.4 posterior (checked
   against numerical integration of the paper's per-mu decomposition
   and against Monte-Carlo simulation), the Sec. 7.2 gain experiment,
   and the Theorem 4.1 leak-rate model vs Protocol 2 runs. *)

module Posterior = Spe_privacy.Posterior
module Gain = Spe_privacy.Gain
module Leakage = Spe_privacy.Leakage
module State = Spe_rng.State
module Dist = Spe_rng.Dist

let st () = State.create ~seed:97 ()

let check_distribution name dist =
  Array.iter (fun p -> if p < -.1e-12 then Alcotest.failf "%s: negative mass" name) dist;
  let total = Array.fold_left ( +. ) 0. dist in
  if abs_float (total -. 1.) > 1e-9 then Alcotest.failf "%s: sums to %f" name total

(* --- priors ----------------------------------------------------------------- *)

let test_priors_are_distributions () =
  check_distribution "uniform" (Posterior.uniform_prior ~bound:10 :> float array);
  check_distribution "unimodal" (Posterior.unimodal_prior ~bound:10 :> float array);
  check_distribution "geometric" (Posterior.geometric_prior ~bound:10 ~p:0.4 :> float array)

let test_unimodal_shape () =
  let f = (Posterior.unimodal_prior ~bound:10 :> float array) in
  (* Peak at A/2 = 5, per the paper: f(i) = (i+1)/36 up to 5. *)
  Alcotest.(check (float 1e-9)) "f(0)" (1. /. 36.) f.(0);
  Alcotest.(check (float 1e-9)) "f(5)" (6. /. 36.) f.(5);
  Alcotest.(check (float 1e-9)) "f(10)" (1. /. 36.) f.(10);
  Alcotest.(check (float 1e-9)) "symmetric" f.(3) f.(7)

let test_prior_validation () =
  Alcotest.check_raises "negative mass"
    (Invalid_argument "Posterior.prior_of_array: negative mass") (fun () ->
      ignore (Posterior.prior_of_array [| 1.5; -0.5 |]));
  Alcotest.check_raises "bad sum" (Invalid_argument "Posterior.prior_of_array: masses must sum to 1")
    (fun () -> ignore (Posterior.prior_of_array [| 0.3; 0.3 |]))

(* --- posterior --------------------------------------------------------------- *)

let test_posterior_is_distribution () =
  let prior = Posterior.uniform_prior ~bound:10 in
  List.iter
    (fun y -> check_distribution (Printf.sprintf "posterior y=%f" y) (Posterior.posterior prior ~y))
    [ 0.1; 0.5; 1.; 2.5; 7.; 10.; 15.; 100. ]

let test_posterior_zero_observation () =
  let prior = Posterior.uniform_prior ~bound:5 in
  let post = Posterior.posterior prior ~y:0. in
  Alcotest.(check (float 0.)) "x = 0 certain" 1. post.(0)

let test_posterior_excludes_zero_on_positive_y () =
  let prior = Posterior.uniform_prior ~bound:5 in
  let post = Posterior.posterior prior ~y:2. in
  Alcotest.(check (float 0.)) "x = 0 impossible" 0. post.(0)

let test_theorem_4_3_support_preserved () =
  (* Every x >= 1 with positive prior stays possible for any y > 0. *)
  let prior = Posterior.unimodal_prior ~bound:10 in
  List.iter
    (fun y ->
      let post = Posterior.posterior prior ~y in
      for x = 1 to 10 do
        if post.(x) <= 0. then Alcotest.failf "support lost at x=%d y=%f" x y
      done)
    [ 0.01; 1.; 9.99; 50. ]

let test_large_y_posterior_constant () =
  (* Paper: every y > A induces the same posterior. *)
  let prior = Posterior.unimodal_prior ~bound:10 in
  let p1 = Posterior.posterior prior ~y:11. in
  let p2 = Posterior.posterior prior ~y:1000. in
  Array.iteri
    (fun x v -> if abs_float (v -. p2.(x)) > 1e-12 then Alcotest.failf "y>A posterior varies at %d" x)
    p1;
  (* and it is proportional to f(x) * x. *)
  let f = (prior :> float array) in
  let expected_raw = Array.mapi (fun x fx -> fx *. float_of_int x) f in
  let total = Array.fold_left ( +. ) 0. expected_raw in
  Array.iteri
    (fun x v ->
      if abs_float (v -. (expected_raw.(x) /. total)) > 1e-12 then
        Alcotest.failf "y>A posterior shape wrong at %d" x)
    p1

(* Numerical integration of the paper's decomposition:
   f(x|y) = int G_mu(x, y) Phi(mu | y) dmu, with
   G_mu(x,y) = (f(x)/x) / sum_(k > y/mu) f(k)/k   on x > y/mu,
   Phi(mu|y) ∝ mu^-2 * (1/mu) * sum_(k > y/mu) f(k)/k. *)
let posterior_by_integration (prior : Posterior.prior) ~y =
  let f = (prior :> float array) in
  let a = Array.length f - 1 in
  let s_tail t =
    (* sum over integers k in (t, A] of f(k)/k *)
    let acc = ref 0. in
    for k = 1 to a do
      if float_of_int k > t then acc := !acc +. (f.(k) /. float_of_int k)
    done;
    !acc
  in
  (* Integrate over mu in [1, cap] with a change of variable u = 1/mu
     (uniform grid in u makes the improper integral finite). *)
  let steps = 200_000 in
  let out = Array.make (a + 1) 0. in
  let du = 1. /. float_of_int steps in
  for i = 0 to steps - 1 do
    let u = (float_of_int i +. 0.5) *. du in
    let mu = 1. /. u in
    (* mu^-2 dmu = du; extra 1/mu for the likelihood. *)
    let tail = s_tail (y /. mu) in
    if tail > 0. then begin
      let weight = u *. du (* Phi(mu) dmu * (1/mu) = u * du *) in
      for x = 1 to a do
        if float_of_int x *. mu > y then
          out.(x) <- out.(x) +. (weight *. (f.(x) /. float_of_int x) /. tail *. tail)
      done
    end
  done;
  let total = Array.fold_left ( +. ) 0. out in
  Array.map (fun v -> v /. total) out

let test_posterior_matches_integration () =
  List.iter
    (fun (prior, y) ->
      let closed = Posterior.posterior prior ~y in
      let integrated = posterior_by_integration prior ~y in
      Array.iteri
        (fun x v ->
          if abs_float (v -. integrated.(x)) > 1e-3 then
            Alcotest.failf "closed %f <> integrated %f at x=%d y=%f" v integrated.(x) x y)
        closed)
    [
      (Posterior.uniform_prior ~bound:10, 0.7);
      (Posterior.uniform_prior ~bound:10, 4.2);
      (Posterior.unimodal_prior ~bound:10, 2.8);
      (Posterior.unimodal_prior ~bound:10, 12.);
    ]

let test_posterior_matches_monte_carlo () =
  (* Simulate the generative process and compare conditional histograms
     near a fixed observation window. *)
  let s = st () in
  let prior = Posterior.uniform_prior ~bound:10 in
  let f = (prior :> float array) in
  let y_lo = 3.0 and y_hi = 3.2 in
  let hits = Array.make 11 0 in
  let samples = 2_000_000 in
  for _ = 1 to samples do
    let x = Dist.categorical s f in
    if x > 0 then begin
      let r = Dist.mask_pair s in
      let y = r *. float_of_int x in
      if y >= y_lo && y < y_hi then hits.(x) <- hits.(x) + 1
    end
  done;
  let total = Array.fold_left ( + ) 0 hits in
  let post = Posterior.posterior prior ~y:3.1 in
  for x = 1 to 10 do
    let empirical = float_of_int hits.(x) /. float_of_int total in
    if abs_float (empirical -. post.(x)) > 0.02 then
      Alcotest.failf "x=%d: empirical %.4f vs closed %.4f" x empirical post.(x)
  done

let test_posterior_ratio () =
  let prior = Posterior.uniform_prior ~bound:10 in
  let r = Posterior.posterior_ratio prior ~y:5. ~x:7 in
  let post = Posterior.posterior prior ~y:5. in
  Alcotest.(check (float 1e-12)) "ratio consistent" (post.(7) /. (1. /. 11.)) r

(* --- information metrics -------------------------------------------------------- *)

let test_entropy_known () =
  Alcotest.(check (float 1e-9)) "uniform over 4" 2. (Posterior.entropy [| 0.25; 0.25; 0.25; 0.25 |]);
  Alcotest.(check (float 1e-9)) "point mass" 0. (Posterior.entropy [| 0.; 1.; 0. |]);
  Alcotest.(check (float 1e-9)) "fair coin" 1. (Posterior.entropy [| 0.5; 0.5 |])

let test_kl_known () =
  Alcotest.(check (float 1e-9)) "identical distributions" 0.
    (Posterior.kl_divergence ~from_:[| 0.5; 0.5 |] ~to_:[| 0.5; 0.5 |]);
  Alcotest.(check bool) "positive when different" true
    (Posterior.kl_divergence ~from_:[| 0.9; 0.1 |] ~to_:[| 0.5; 0.5 |] > 0.);
  Alcotest.(check bool) "infinite on support loss" true
    (Posterior.kl_divergence ~from_:[| 0.5; 0.5 |] ~to_:[| 1.; 0. |] = Float.infinity)

let test_posterior_keeps_most_entropy () =
  (* Theorem 4.3, quantified: the masked observation removes only a
     modest share of the observer's uncertainty. *)
  let s = st () in
  let prior = Posterior.uniform_prior ~bound:10 in
  let before = Posterior.entropy (prior :> float array) in
  let after = Posterior.expected_posterior_entropy s prior ~samples:5000 in
  Alcotest.(check bool)
    (Printf.sprintf "entropy %.3f -> %.3f keeps > 60%%" before after)
    true
    (after > 0.6 *. before);
  Alcotest.(check bool) "and it cannot grow" true (after <= before +. 1e-9)

let test_kl_prior_to_posterior_small () =
  let prior = Posterior.uniform_prior ~bound:10 in
  let post = Posterior.posterior prior ~y:30. in
  (* y > A: the induced posterior is the fixed reweighting f(x)*x; its
     divergence from the prior is well under one bit. *)
  let kl = Posterior.kl_divergence ~from_:post ~to_:(prior :> float array) in
  Alcotest.(check bool) (Printf.sprintf "KL %.3f < 1 bit" kl) true (kl < 1.)

(* --- gain experiment ---------------------------------------------------------- *)

let test_gain_experiment_shape () =
  let s = st () in
  let prior = Posterior.uniform_prior ~bound:10 in
  let r = Gain.run s ~prior ~trials_per_x:200 in
  Alcotest.(check int) "A * trials samples" 2000 (Array.length r.Gain.gains);
  (* Figure 1's qualitative shape: small positive average gain. *)
  Alcotest.(check bool)
    (Printf.sprintf "average gain %.4f is small and positive" r.Gain.average)
    true
    (r.Gain.average > 0. && r.Gain.average < 1.)

let test_gain_experiment_unimodal () =
  let s = st () in
  let prior = Posterior.unimodal_prior ~bound:10 in
  let r = Gain.run s ~prior ~trials_per_x:200 in
  Alcotest.(check bool)
    (Printf.sprintf "unimodal average gain %.4f small" r.Gain.average)
    true
    (r.Gain.average > -0.5 && r.Gain.average < 1.)

let test_histogram () =
  let h = Gain.histogram_of ~buckets:4 [| 0.; 1.; 2.; 3.; 3.9 |] in
  Alcotest.(check int) "bucket count" 4 (Array.length h.Gain.counts);
  Alcotest.(check int) "total preserved" 5 (Array.fold_left ( + ) 0 h.Gain.counts);
  Alcotest.check_raises "empty sample" (Invalid_argument "Gain.histogram_of: empty sample")
    (fun () -> ignore (Gain.histogram_of [||]))

(* --- leakage ------------------------------------------------------------------- *)

let test_leakage_theoretical () =
  let r = Leakage.theoretical ~modulus:1000 ~input_bound:100 ~x:30 in
  Alcotest.(check (float 1e-12)) "p2 lower = x/S" 0.03 r.Leakage.p2_lower;
  Alcotest.(check (float 1e-12)) "p2 upper = (A-x)/S" 0.07 r.Leakage.p2_upper;
  Alcotest.(check (float 1e-12)) "p3 bound = A/(S-A)" (100. /. 900.) r.Leakage.p3_lower

let test_leakage_monte_carlo_matches_theory () =
  (* Small S so the rates are measurable. *)
  let s = st () in
  let modulus = 1 lsl 10 and input_bound = 100 and x = 60 in
  let trials = 20_000 in
  let o = Leakage.monte_carlo s ~modulus ~input_bound ~x ~trials in
  let t = Leakage.theoretical ~modulus ~input_bound ~x in
  let rate hits = float_of_int hits /. float_of_int trials in
  (* The P2 rates are exact probabilities: check within 3 sigma. *)
  let sigma p = 3. *. sqrt (p *. (1. -. p) /. float_of_int trials) +. 0.002 in
  Alcotest.(check bool)
    (Printf.sprintf "p2 lower %.4f vs theory %.4f" (rate o.Leakage.p2_lower_hits) t.Leakage.p2_lower)
    true
    (abs_float (rate o.Leakage.p2_lower_hits -. t.Leakage.p2_lower) < sigma t.Leakage.p2_lower);
  Alcotest.(check bool)
    (Printf.sprintf "p2 upper %.4f vs theory %.4f" (rate o.Leakage.p2_upper_hits) t.Leakage.p2_upper)
    true
    (abs_float (rate o.Leakage.p2_upper_hits -. t.Leakage.p2_upper) < sigma t.Leakage.p2_upper);
  (* The P3 rates are upper-bounded by theory. *)
  Alcotest.(check bool) "p3 lower below bound" true
    (rate o.Leakage.p3_lower_hits <= t.Leakage.p3_lower +. 0.01);
  Alcotest.(check bool) "p3 upper below bound" true
    (rate o.Leakage.p3_upper_hits <= t.Leakage.p3_upper +. 0.01)

let test_required_modulus () =
  let s = Leakage.required_modulus ~input_bound:100 ~counters:1000 ~epsilon:0.01 in
  Alcotest.(check int) "S >= A(1 + 2c/eps)" (100 * (1 + 200_000)) s;
  (* And it actually suppresses leaks: a quick empirical check. *)
  let st = st () in
  let o = Leakage.monte_carlo st ~modulus:s ~input_bound:100 ~x:50 ~trials:2000 in
  let leaks =
    o.Leakage.p2_lower_hits + o.Leakage.p2_upper_hits + o.Leakage.p3_lower_hits
    + o.Leakage.p3_upper_hits
  in
  Alcotest.(check int) "no leaks at the prescribed modulus" 0 leaks

(* --- perturbation baseline ------------------------------------------------------ *)

module Perturbation = Spe_privacy.Perturbation
module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Generate = Spe_graph.Generate
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength

let perturbation_workload s =
  let g = Generate.erdos_renyi_gnm s ~n:25 ~m:120 in
  let planted = Cascade.uniform_probabilities ~p:0.4 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 60; seeds_per_action = 2; max_delay = 2 } in
  (g, log)

let test_laplace_noise_properties () =
  let s = st () in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Perturbation.laplace_noise s ~scale:2.) in
  let mean = Array.fold_left ( +. ) 0. samples /. float_of_int n in
  Alcotest.(check bool) "centred" true (abs_float mean < 0.05);
  (* Laplace(b) variance is 2 b^2 = 8. *)
  let var = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. samples /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "variance %.2f near 8" var) true
    (abs_float (var -. 8.) < 0.5)

let test_perturbed_error_decreases_with_epsilon () =
  let s = st () in
  let g, log = perturbation_workload s in
  let ct = Counters.compute_graph log ~h:2 g in
  let exact = Link_strength.all_eq1 ct in
  let mean_abs_err epsilon =
    let total = ref 0. and trials = 20 in
    for _ = 1 to trials do
      let noisy = Perturbation.perturbed_strengths s ~epsilon ct in
      Array.iteri (fun k p -> total := !total +. abs_float (p -. exact.(k))) noisy
    done;
    !total /. float_of_int (trials * Array.length exact)
  in
  let loose = mean_abs_err 0.1 and tight = mean_abs_err 10. in
  Alcotest.(check bool)
    (Printf.sprintf "error at eps=0.1 (%.3f) > error at eps=10 (%.3f)" loose tight)
    true (loose > 2. *. tight);
  (* And even at strong privacy the output stays in [0, 1]. *)
  let noisy = Perturbation.perturbed_strengths s ~epsilon:0.05 ct in
  Array.iter (fun p -> if p < 0. || p > 1. then Alcotest.fail "clamping failed") noisy

let test_randomized_response_identity_at_one () =
  let s = st () in
  let _, log = perturbation_workload s in
  Alcotest.(check bool) "p=1 keeps the log" true
    (Log.equal log (Perturbation.randomized_response s ~p_truth:1. log))

let test_randomized_response_degrades () =
  let s = st () in
  let g, log = perturbation_workload s in
  let ct_exact = Counters.compute_graph log ~h:2 g in
  let noisy_log = Perturbation.randomized_response s ~p_truth:0.3 log in
  Alcotest.(check int) "universe preserved" (Log.num_users log) (Log.num_users noisy_log);
  let ct_noisy = Counters.compute_graph noisy_log ~h:2 g in
  (* The perturbed counters differ (overwhelmingly likely). *)
  Alcotest.(check bool) "counters perturbed" true (ct_exact.Counters.b <> ct_noisy.Counters.b)

let test_perturbation_validation () =
  let s = st () in
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Perturbation.laplace_counters: epsilon must be positive") (fun () ->
      let g, log = perturbation_workload s in
      ignore (Perturbation.laplace_counters s ~epsilon:0. (Counters.compute_graph log ~h:2 g)));
  Alcotest.check_raises "bad p_truth"
    (Invalid_argument "Perturbation.randomized_response: p_truth out of [0,1]") (fun () ->
      let _, log = perturbation_workload s in
      ignore (Perturbation.randomized_response s ~p_truth:1.5 log))

(* --- epoch composition ---------------------------------------------------------- *)

module Composition = Spe_privacy.Composition

let test_composition_closed_form () =
  let sched =
    Composition.of_group_widths ~width:2 ~sourced:[| 3; 0; 1 |] ~versions:[| 2; 1; 0 |]
  in
  (* Group sizes 7, 1, 3 at width 2; executions = 7*2 + 1*1 + 3*0. *)
  Alcotest.(check int) "executions" 15 (Composition.executions sched);
  let b = Composition.closed_form ~modulus:1000 ~input_bound:10 sched in
  Alcotest.(check int) "equivalent counters" 15 b.Composition.equivalent_counters;
  let r = (10. /. 1000.) +. (2. *. 10. /. 990.) in
  Alcotest.(check (float 1e-12)) "per counter" r b.Composition.per_counter;
  Alcotest.(check (float 1e-12)) "union bound" (15. *. r) b.Composition.total;
  let tight = Composition.closed_form ~modulus:11 ~input_bound:10 sched in
  Alcotest.(check (float 0.)) "clamped at 1" 1. tight.Composition.total

let test_composition_required_modulus () =
  (* The epoch sequence needs exactly the modulus of one batch release
     over the equivalent counter count. *)
  let sched = Composition.schedule ~group_sizes:[| 4; 4 |] ~versions:[| 3; 2 |] in
  Alcotest.(check int) "matches the batch closed form"
    (Leakage.required_modulus ~input_bound:20 ~counters:20 ~epsilon:0.1)
    (Composition.required_modulus ~input_bound:20 sched ~epsilon:0.1)

let test_composition_monte_carlo () =
  let s = st () in
  let modulus = 400 and input_bound = 40 and x = 17 and versions = 4 in
  let mc = Composition.monte_carlo s ~modulus ~input_bound ~x ~versions ~trials:1500 in
  Alcotest.(check bool)
    (Printf.sprintf "composed %.4f near independent prediction %.4f"
       mc.Composition.composed_rate mc.Composition.predicted)
    true
    (abs_float (mc.Composition.composed_rate -. mc.Composition.predicted) < 0.05);
  let sched = Composition.schedule ~group_sizes:[| 1 |] ~versions:[| versions |] in
  let b = Composition.closed_form ~modulus ~input_bound sched in
  Alcotest.(check bool) "under the union bound" true
    (mc.Composition.composed_rate <= b.Composition.total)

let test_composition_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Composition.schedule: one version count per group") (fun () ->
      ignore (Composition.schedule ~group_sizes:[| 1; 2 |] ~versions:[| 1 |]));
  Alcotest.check_raises "S > A"
    (Invalid_argument "Composition.closed_form: need S > A") (fun () ->
      ignore
        (Composition.closed_form ~modulus:10 ~input_bound:10
           (Composition.schedule ~group_sizes:[| 1 |] ~versions:[| 1 |])))

(* --- QCheck -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"posterior is a distribution for any prior and y" ~count:200
      (pair (int_range 2 12) (float_range 0.01 50.))
      (fun (a, y) ->
        let prior = Posterior.uniform_prior ~bound:a in
        let post = Posterior.posterior prior ~y in
        abs_float (Array.fold_left ( +. ) 0. post -. 1.) < 1e-9);
    Test.make ~name:"posterior mean within support" ~count:200
      (pair (int_range 2 12) (float_range 0.01 50.))
      (fun (a, y) ->
        let prior = Posterior.uniform_prior ~bound:a in
        let m = Posterior.mean (Posterior.posterior prior ~y) in
        m >= 0. && m <= float_of_int a);
    Test.make ~name:"theoretical leak rates sum to 1 for P2" ~count:200
      (pair (int_range 101 10_000) (int_range 0 100))
      (fun (modulus, x) ->
        let r = Leakage.theoretical ~modulus ~input_bound:100 ~x in
        let nothing = float_of_int (modulus - 100) /. float_of_int modulus in
        abs_float (r.Leakage.p2_lower +. r.Leakage.p2_upper +. nothing -. 1.) < 1e-9);
  ]

let () =
  Alcotest.run "spe_privacy"
    [
      ( "priors",
        [
          Alcotest.test_case "are distributions" `Quick test_priors_are_distributions;
          Alcotest.test_case "unimodal shape" `Quick test_unimodal_shape;
          Alcotest.test_case "validation" `Quick test_prior_validation;
        ] );
      ( "posterior",
        [
          Alcotest.test_case "is a distribution" `Quick test_posterior_is_distribution;
          Alcotest.test_case "y = 0" `Quick test_posterior_zero_observation;
          Alcotest.test_case "y > 0 excludes 0" `Quick test_posterior_excludes_zero_on_positive_y;
          Alcotest.test_case "theorem 4.3 support" `Quick test_theorem_4_3_support_preserved;
          Alcotest.test_case "y > A constant posterior" `Quick test_large_y_posterior_constant;
          Alcotest.test_case "matches paper's integral form" `Slow test_posterior_matches_integration;
          Alcotest.test_case "matches monte carlo" `Slow test_posterior_matches_monte_carlo;
          Alcotest.test_case "ratio" `Quick test_posterior_ratio;
        ] );
      ( "information",
        [
          Alcotest.test_case "entropy" `Quick test_entropy_known;
          Alcotest.test_case "kl divergence" `Quick test_kl_known;
          Alcotest.test_case "posterior keeps entropy" `Quick test_posterior_keeps_most_entropy;
          Alcotest.test_case "kl prior-posterior small" `Quick test_kl_prior_to_posterior_small;
        ] );
      ( "gain",
        [
          Alcotest.test_case "experiment shape (uniform)" `Quick test_gain_experiment_shape;
          Alcotest.test_case "experiment shape (unimodal)" `Quick test_gain_experiment_unimodal;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "perturbation",
        [
          Alcotest.test_case "laplace noise shape" `Quick test_laplace_noise_properties;
          Alcotest.test_case "error vs epsilon" `Quick test_perturbed_error_decreases_with_epsilon;
          Alcotest.test_case "rr identity at p=1" `Quick test_randomized_response_identity_at_one;
          Alcotest.test_case "rr degrades counters" `Quick test_randomized_response_degrades;
          Alcotest.test_case "validation" `Quick test_perturbation_validation;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "theoretical rates" `Quick test_leakage_theoretical;
          Alcotest.test_case "monte carlo vs theory" `Slow test_leakage_monte_carlo_matches_theory;
          Alcotest.test_case "required modulus" `Quick test_required_modulus;
        ] );
      ( "composition",
        [
          Alcotest.test_case "closed form" `Quick test_composition_closed_form;
          Alcotest.test_case "required modulus" `Quick test_composition_required_modulus;
          Alcotest.test_case "monte carlo independence" `Slow test_composition_monte_carlo;
          Alcotest.test_case "validation" `Quick test_composition_validation;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |])) qcheck_tests);
    ]
