(* Tests for the observability layer: the trace model (spans, counters,
   phase map), metric aggregation under an injected clock, the JSON
   round-trip through Spe_obs's own reader, and — the load-bearing
   invariant — that an instrumented run's Messages/Payload_bytes
   counters agree exactly with the Net_wire accounting and the
   simulated wire, for Protocol 3 and both full pipelines on the
   memory and socket engines (and for the central drivers' transcript
   replay). *)

module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Session = Spe_mpc.Session
module P3d = Spe_mpc.Protocol3_distributed
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module Driver_distributed = Spe_core.Driver_distributed
module Endpoint = Spe_net.Endpoint
module Fault = Spe_net.Fault
module Net_wire = Spe_net.Net_wire
module Trace = Spe_obs.Trace
module Metrics = Spe_obs.Metrics
module Obs_io = Spe_obs.Obs_io

(* A deterministic clock: every read advances by [step] — the library's
   own virtual-clock seam (also what the chaos harness injects). *)
let ticking = Trace.ticking

(* --- the trace model ------------------------------------------------------- *)

let test_trace_basics () =
  let trace = Trace.create ~clock:(ticking ()) () in
  Alcotest.(check bool) "recording" true (Trace.enabled trace);
  let r = Trace.span trace ~party:"P1" ~index:3 Trace.Round "round" (fun () -> 42) in
  Alcotest.(check int) "span returns the body's value" 42 r;
  Trace.count trace ~party:"P1" ~round:3 Trace.Messages 2;
  Trace.count trace Trace.Payload_bytes 0 (* zero deltas are dropped *);
  Trace.note trace ~party:"P1" "hello";
  (match Trace.events trace with
  | [ Trace.Span { kind = Trace.Round; label = "round"; party = Some "P1"; index = Some 3;
                   start; stop };
      Trace.Count { counter = Trace.Messages; delta = 2; round = Some 3; _ };
      Trace.Note { label = "hello"; _ } ] ->
    (* The injected clock ticks 0.5 s per read: create consumes one
       read, the span start/stop the next two. *)
    Alcotest.(check (float 1e-9)) "span start" 0.5 start;
    Alcotest.(check (float 1e-9)) "span stop" 1.0 stop
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs));
  Alcotest.check_raises "negative delta rejected"
    (Invalid_argument "Trace.count: negative delta") (fun () ->
      Trace.count trace Trace.Messages (-1))

let test_trace_span_reraises () =
  let trace = Trace.create ~clock:(ticking ()) () in
  (match Trace.span trace Trace.Session "boom" (fun () -> failwith "inner") with
  | () -> Alcotest.fail "expected the body's exception"
  | exception Failure msg ->
    Alcotest.(check string) "exception passes through" "inner" msg);
  match Trace.events trace with
  | [ Trace.Span { kind = Trace.Session; label = "boom"; _ } ] -> ()
  | _ -> Alcotest.fail "span not recorded on raise"

let test_trace_disabled () =
  let trace = Trace.disabled () in
  Alcotest.(check bool) "not recording" false (Trace.enabled trace);
  Trace.count trace Trace.Messages 5;
  Trace.note trace "ignored";
  let r = Trace.span trace Trace.Session "s" (fun () -> 7) in
  Alcotest.(check int) "span still runs the body" 7 r;
  Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events trace));
  (* ... but the phase map is live: Round_timeout depends on it. *)
  Trace.set_phases trace [ ("a", 2); ("b", 1) ];
  Alcotest.(check (option string)) "phase map served" (Some "b") (Trace.phase_of_round trace 3)

let test_phase_of_round () =
  let trace = Trace.create ~clock:(ticking ()) () in
  Alcotest.(check (option string)) "no map" None (Trace.phase_of_round trace 1);
  Trace.set_phases trace [ ("a", 2); ("empty", 0); ("c", 3) ];
  let check r expect =
    Alcotest.(check (option string)) (Printf.sprintf "round %d" r) expect
      (Trace.phase_of_round trace r)
  in
  check 0 None;
  check (-1) None;
  check 1 (Some "a");
  check 2 (Some "a");
  check 3 (Some "c");
  check 5 (Some "c");
  (* Rounds past the map's total (the quiescent finishing round)
     belong to the last phase. *)
  check 6 (Some "c");
  check 100 (Some "c");
  Alcotest.check_raises "negative segment rejected"
    (Invalid_argument "Trace.set_phases: negative rounds") (fun () ->
      Trace.set_phases trace [ ("x", -1) ])

(* --- aggregation ------------------------------------------------------------ *)

(* A synthetic two-party, three-round trace under the ticking clock;
   round 2 carries no messages, so NR = 2 of 3 executed rounds. *)
let test_metrics_synthetic () =
  let trace = Trace.create ~clock:(ticking ~step:1.0 ()) () in
  Trace.set_phases trace [ ("first", 1); ("rest", 2) ];
  Trace.span trace Trace.Session "session" (fun () ->
      for round = 1 to 3 do
        List.iter
          (fun party ->
            Trace.span trace ~party ~index:round Trace.Round "round" (fun () ->
                Trace.span trace ~party ~index:round Trace.Compute "step" (fun () -> ());
                if round <> 2 then begin
                  Trace.count trace ~party ~round Trace.Messages 1;
                  Trace.count trace ~party ~round Trace.Payload_bytes
                    (if round = 1 then 100 else 9)
                end))
          [ "A"; "B" ]
      done);
  let r = Metrics.of_trace ~protocol:"synthetic" ~engine:"test" ~parties:2 trace in
  Alcotest.(check int) "NR counts message-bearing rounds only" 2 r.Metrics.rounds;
  Alcotest.(check int) "NM" 4 r.Metrics.messages;
  Alcotest.(check int) "payload bytes" 218 r.Metrics.payload_bytes;
  Alcotest.(check bool) "no framed bytes recorded" true (r.Metrics.framed_bytes = None);
  Alcotest.(check bool) "no transport bytes recorded" true
    (r.Metrics.transport_bytes = None);
  (match r.Metrics.phases with
  | [ first; rest ] ->
    Alcotest.(check string) "first phase label" "first" first.Metrics.phase;
    Alcotest.(check int) "first phase rounds" 1 first.Metrics.rounds;
    Alcotest.(check int) "first phase messages" 2 first.Metrics.messages;
    Alcotest.(check int) "first phase bytes" 200 first.Metrics.payload_bytes;
    Alcotest.(check int) "rest phase rounds" 1 rest.Metrics.rounds;
    Alcotest.(check int) "rest phase messages" 2 rest.Metrics.messages;
    Alcotest.(check int) "rest phase bytes" 18 rest.Metrics.payload_bytes
  | rows -> Alcotest.failf "expected 2 phase rows, got %d" (List.length rows));
  (match r.Metrics.compute with
  | [ a; b ] ->
    Alcotest.(check string) "compute sorted by party" "A" a.Metrics.party;
    Alcotest.(check int) "A stepped every round" 3 a.Metrics.calls;
    Alcotest.(check int) "B stepped every round" 3 b.Metrics.calls
  | rows -> Alcotest.failf "expected 2 compute rows, got %d" (List.length rows));
  (* 100 -> <=128, 9 -> <=16. *)
  Alcotest.(check bool) "histogram buckets are powers of two" true
    (List.map (fun (h : Metrics.hist_bucket) -> (h.Metrics.le_bytes, h.Metrics.count))
       r.Metrics.payload_hist
    = [ (16, 2); (128, 2) ]);
  (* The session span is the widest interval the clock produced. *)
  Alcotest.(check bool) "wall from the session span" true (r.Metrics.wall_s > 0.);
  Alcotest.(check bool) "trace agrees with itself" true
    (Metrics.equal_accounting r ~messages:4 ~payload_bytes:218)

(* --- JSON ------------------------------------------------------------------- *)

let sample_report () =
  let trace = Trace.create ~clock:(ticking ()) () in
  Trace.set_phases trace [ ("only", 1) ];
  Trace.span trace Trace.Session "session" (fun () ->
      Trace.span trace ~party:"P0" ~index:1 Trace.Round "round" (fun () ->
          Trace.count trace ~party:"P0" ~round:1 Trace.Messages 3;
          Trace.count trace ~party:"P0" ~round:1 Trace.Payload_bytes 1234;
          Trace.count trace ~party:"P0" ~round:1 Trace.Framed_bytes 1300;
          Trace.count trace ~party:"P0" Trace.Transport_bytes 1400;
          Trace.count trace Trace.Retransmits 2;
          Trace.count trace Trace.Nacks 1;
          Trace.count trace Trace.Timeouts 1;
          Trace.count trace Trace.Faults_dropped 1;
          Trace.count trace Trace.Faults_delayed 2));
  Metrics.of_trace ~protocol:"sample" ~engine:"memory" ~parties:3 trace

let test_json_roundtrip () =
  let r = sample_report () in
  let s = Obs_io.report_to_string r in
  let r' = Obs_io.report_of_string s in
  Alcotest.(check bool) "report round-trips through its own reader" true (r = r');
  (* And the bench wrapper too. *)
  let bench = Obs_io.bench_to_string ~generated_by:"test_obs" [ r; r ] in
  (match Obs_io.bench_of_string bench with
  | [ a; b ] -> Alcotest.(check bool) "bench rows round-trip" true (a = r && b = r)
  | rows -> Alcotest.failf "expected 2 bench rows, got %d" (List.length rows));
  (* The machine-facing document is strict about its version tag. *)
  let tampered =
    let sub = Obs_io.schema in
    let i =
      let n = String.length s and m = String.length sub in
      let rec find i =
        if i + m > n then Alcotest.fail "schema tag not found"
        else if String.sub s i m = sub then i
        else find (i + 1)
      in
      find 0
    in
    String.sub s 0 i ^ "spe-metrics/999"
    ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)
  in
  (match Obs_io.report_of_string tampered with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown schema accepted");
  match Obs_io.Json.of_string (s ^ "{}") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted"

(* Pre-sharding spe-metrics/1 documents (no "shards" field) must still
   read back, with an empty shard table. *)
let test_json_reads_v1 () =
  let r = sample_report () in
  let v2 = Obs_io.report_to_json r in
  let v1 =
    match v2 with
    | Obs_io.Json.Obj fields ->
      Obs_io.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             match k with
             | "schema" -> Some (k, Obs_io.Json.String Obs_io.schema_v1)
             | "shards" -> None
             | _ -> Some (k, v))
           fields)
    | _ -> Alcotest.fail "report did not serialize to an object"
  in
  let r' = Obs_io.report_of_json v1 in
  Alcotest.(check bool) "v1 document accepted, shards empty" true
    (r' = { r with Metrics.shards = [] })

let test_metrics_merge () =
  let shard i =
    let trace = Trace.create ~clock:(ticking ~step:1.0 ()) () in
    Trace.set_phases trace [ ("publish", 1); ("core", 2) ];
    Trace.span trace Trace.Session "session" (fun () ->
        for round = 1 to 3 do
          Trace.span trace ~party:"Host" ~index:round Trace.Round "round" (fun () ->
              Trace.span trace ~party:"Host" ~index:round Trace.Compute "step" (fun () -> ());
              Trace.count trace ~party:"Host" ~round Trace.Messages 1;
              Trace.count trace ~party:"Host" ~round Trace.Payload_bytes (10 * (i + 1));
              Trace.count trace ~party:"Host" ~round Trace.Framed_bytes (12 * (i + 1)))
        done);
    Metrics.of_trace ~protocol:"links" ~engine:"memory" ~parties:4 trace
  in
  let a = shard 0 and b = shard 1 in
  let m = Metrics.merge [ a; b ] in
  Alcotest.(check int) "NR sums" (a.Metrics.rounds + b.Metrics.rounds) m.Metrics.rounds;
  Alcotest.(check int) "NM sums" (a.Metrics.messages + b.Metrics.messages) m.Metrics.messages;
  Alcotest.(check int) "payload sums"
    (a.Metrics.payload_bytes + b.Metrics.payload_bytes)
    m.Metrics.payload_bytes;
  Alcotest.(check (option int)) "framed bytes sum"
    (Some (Option.get a.Metrics.framed_bytes + Option.get b.Metrics.framed_bytes))
    m.Metrics.framed_bytes;
  Alcotest.(check (option int)) "unmeasured transport stays None" None
    m.Metrics.transport_bytes;
  Alcotest.(check int) "parties is the shared party set" 4 m.Metrics.parties;
  (* Phase rows merge by label, preserving the shared map's order. *)
  (match m.Metrics.phases with
  | [ publish; core ] ->
    Alcotest.(check string) "first phase" "publish" publish.Metrics.phase;
    Alcotest.(check string) "second phase" "core" core.Metrics.phase;
    Alcotest.(check int) "phase messages merge" 2 publish.Metrics.messages;
    Alcotest.(check int) "phase bytes merge" 30 publish.Metrics.payload_bytes
  | rows -> Alcotest.failf "expected 2 merged phase rows, got %d" (List.length rows));
  (* One shard row per input, in order, carrying the input's totals. *)
  (match m.Metrics.shards with
  | [ s0; s1 ] ->
    Alcotest.(check int) "shard 0 index" 0 s0.Metrics.shard;
    Alcotest.(check int) "shard 1 index" 1 s1.Metrics.shard;
    Alcotest.(check int) "shard 0 payload" a.Metrics.payload_bytes s0.Metrics.payload_bytes;
    Alcotest.(check int) "shard 1 payload" b.Metrics.payload_bytes s1.Metrics.payload_bytes
  | rows -> Alcotest.failf "expected 2 shard rows, got %d" (List.length rows));
  (* Compute rows merge by party. *)
  (match m.Metrics.compute with
  | [ host ] -> Alcotest.(check int) "compute calls sum" 6 host.Metrics.calls
  | rows -> Alcotest.failf "expected 1 merged compute row, got %d" (List.length rows));
  (* A merged report is still a report: it round-trips with its shard
     table intact. *)
  let m' = Obs_io.report_of_string (Obs_io.report_to_string m) in
  Alcotest.(check bool) "merged report round-trips" true (m = m');
  Alcotest.check_raises "empty merge rejected"
    (Invalid_argument "Metrics.merge: need at least one report") (fun () ->
      ignore (Metrics.merge []))

let test_json_values () =
  let check s v =
    Alcotest.(check bool) (Printf.sprintf "parse %s" s) true (Obs_io.Json.of_string s = v)
  in
  check "null" Obs_io.Json.Null;
  check "true" (Obs_io.Json.Bool true);
  check "-42" (Obs_io.Json.Int (-42));
  check "1.5" (Obs_io.Json.Float 1.5);
  check {|"a\"bA"|} (Obs_io.Json.String "a\"bA");
  check "[1, 2]" (Obs_io.Json.List [ Obs_io.Json.Int 1; Obs_io.Json.Int 2 ]);
  check {|{"k": [true]}|} (Obs_io.Json.Obj [ ("k", Obs_io.Json.List [ Obs_io.Json.Bool true ]) ]);
  List.iter
    (fun v ->
      Alcotest.(check bool) "writer/reader round-trip" true
        (Obs_io.Json.of_string (Obs_io.Json.to_string v) = v))
    [
      Obs_io.Json.Obj
        [ ("a", Obs_io.Json.Float 0.1); ("b", Obs_io.Json.String "x\ny\t\"z\"");
          ("c", Obs_io.Json.List [ Obs_io.Json.Null; Obs_io.Json.Float 1e-17 ]) ];
      Obs_io.Json.Float (-0.0000123);
      Obs_io.Json.Int max_int;
    ];
  List.iter
    (fun s ->
      match Obs_io.Json.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "malformed %S accepted" s)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}" ]

(* --- accounting equality across the stack ----------------------------------- *)

(* The invariant behind `--metrics`: an instrumented run's
   Messages/Payload_bytes totals equal the Net_wire accounting, which
   in turn equals the simulated wire (test_net proves that half). *)

let logs_of (res : Endpoint.result) =
  Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes

let check_engine_accounting label trace (res : Endpoint.result) =
  let totals = Net_wire.totals (logs_of res) in
  let report =
    Metrics.of_trace ~protocol:label ~engine:"endpoint" ~parties:(Array.length res.Endpoint.outcomes)
      trace
  in
  Alcotest.(check bool)
    (label ^ ": trace NM and MS/8 equal the Net_wire accounting")
    true
    (Metrics.equal_accounting report ~messages:totals.Net_wire.messages
       ~payload_bytes:totals.Net_wire.payload_bytes);
  Alcotest.(check (option int)) (label ^ ": framed bytes equal Net_wire")
    (Some totals.Net_wire.framed_bytes) report.Metrics.framed_bytes;
  (match report.Metrics.transport_bytes with
  | Some t ->
    Alcotest.(check int) (label ^ ": transport bytes equal the endpoint total")
      res.Endpoint.transport_bytes t
  | None -> Alcotest.fail (label ^ ": no transport bytes recorded"));
  report

let check_sim_accounting label trace (w : Wire.t) =
  let stats = Wire.stats w in
  let report = Metrics.of_trace ~protocol:label ~engine:"sim" ~parties:0 trace in
  Alcotest.(check bool)
    (label ^ ": trace NM and MS/8 equal the simulated wire")
    true
    (Metrics.equal_accounting report ~messages:stats.Wire.messages
       ~payload_bytes:(stats.Wire.bits / 8));
  Alcotest.(check int) (label ^ ": NR equals the simulated wire") stats.Wire.rounds
    report.Metrics.rounds;
  report

let test_p3_accounting () =
  let session () =
    P3d.make (State.create ~seed:71 ()) ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1)
      ~host:Wire.Host ~a1:3 ~a2:4
  in
  let sim_trace = Trace.create () in
  let w = Wire.create () in
  let _q = Session.run ~trace:sim_trace (session ()) ~wire:w in
  let sim = check_sim_accounting "p3 sim" sim_trace w in
  List.iter
    (fun (engine, run) ->
      let trace = Trace.create () in
      let _q, res = run ~trace (session ()) in
      let report = check_engine_accounting ("p3 " ^ engine) trace res in
      Alcotest.(check bool) ("p3 " ^ engine ^ ": same NM/MS as the sim engine") true
        (Metrics.equal_accounting report ~messages:sim.Metrics.messages
           ~payload_bytes:sim.Metrics.payload_bytes))
    [
      ("memory", fun ~trace s -> Endpoint.run_session_memory ~trace s);
      ("socket", fun ~trace s -> Endpoint.run_session_socket ~trace s);
    ]

let pipeline_workload = Util.workload

(* Both full pipelines: trace accounting == Net_wire on memory and
   socket, == the simulated wire on sim, and the phase rows cover the
   whole run (sums equal the totals). *)
let check_pipeline_accounting name session =
  let sim_trace = Trace.create () in
  let w = Wire.create () in
  let _ = Session.run ~trace:sim_trace (session ()) ~wire:w in
  let sim = check_sim_accounting (name ^ " sim") sim_trace w in
  let check_phase_cover label (r : Metrics.report) =
    Alcotest.(check int) (label ^ ": phase messages sum to NM") r.Metrics.messages
      (List.fold_left (fun acc (p : Metrics.phase_row) -> acc + p.Metrics.messages) 0
         r.Metrics.phases);
    Alcotest.(check int) (label ^ ": phase bytes sum to MS/8") r.Metrics.payload_bytes
      (List.fold_left (fun acc (p : Metrics.phase_row) -> acc + p.Metrics.payload_bytes) 0
         r.Metrics.phases);
    Alcotest.(check int) (label ^ ": phase rounds sum to NR") r.Metrics.rounds
      (List.fold_left (fun acc (p : Metrics.phase_row) -> acc + p.Metrics.rounds) 0
         r.Metrics.phases)
  in
  check_phase_cover (name ^ " sim") sim;
  List.iter
    (fun (engine, run) ->
      let trace = Trace.create () in
      let _, res = run ~trace (session ()) in
      let label = name ^ " " ^ engine in
      let report = check_engine_accounting label trace res in
      Alcotest.(check bool) (label ^ ": same NM/MS as the sim engine") true
        (Metrics.equal_accounting report ~messages:sim.Metrics.messages
           ~payload_bytes:sim.Metrics.payload_bytes);
      check_phase_cover label report)
    [
      ("memory", fun ~trace s -> Endpoint.run_session_memory ~trace s);
      ("socket", fun ~trace s -> Endpoint.run_session_socket ~trace s);
    ]

let test_links_accounting () =
  let g, logs = pipeline_workload ~seed:171 ~n:24 ~edges:70 ~actions:10 ~m:3 in
  let config = Protocol4.default_config ~h:2 in
  check_pipeline_accounting "links" (fun () ->
      Driver_distributed.links_exclusive (State.create ~seed:172 ()) ~graph:g ~logs config)

let test_scores_accounting () =
  let g, logs = pipeline_workload ~seed:173 ~n:20 ~edges:60 ~actions:8 ~m:3 in
  let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
  check_pipeline_accounting "scores" (fun () ->
      Driver_distributed.user_scores_exclusive (State.create ~seed:174 ()) ~graph:g ~logs
        ~tau:6 ~modulus:(1 lsl 20) config)

(* The central drivers replay their transcript into the trace; the
   totals must match the transcript's own (byte-rounded) accounting. *)
let test_central_accounting () =
  let g, logs = pipeline_workload ~seed:175 ~n:24 ~edges:70 ~actions:10 ~m:3 in
  let transcript_bytes t =
    List.fold_left (fun acc (m : Wire.message) -> acc + ((m.Wire.bits + 7) / 8)) 0 t
  in
  let trace = Trace.create () in
  let r =
    Driver.link_strengths_exclusive ~trace (State.create ~seed:176 ()) ~graph:g ~logs
      (Protocol4.default_config ~h:2)
  in
  let report = Metrics.of_trace ~protocol:"links" ~engine:"central" ~parties:4 trace in
  Alcotest.(check bool) "central links: trace equals the transcript accounting" true
    (Metrics.equal_accounting report ~messages:r.Driver.wire.Wire.messages
       ~payload_bytes:(transcript_bytes r.Driver.transcript));
  Alcotest.(check int) "central links: NR equals the wire" r.Driver.wire.Wire.rounds
    report.Metrics.rounds;
  let trace = Trace.create () in
  let r =
    Driver.user_scores_exclusive ~trace (State.create ~seed:177 ()) ~graph:g ~logs ~tau:6
      ~modulus:(1 lsl 20)
      { Protocol6.default_config with Protocol6.key_bits = 128 }
  in
  let report = Metrics.of_trace ~protocol:"scores" ~engine:"central" ~parties:4 trace in
  Alcotest.(check bool) "central scores: trace equals the transcript accounting" true
    (Metrics.equal_accounting report ~messages:r.Driver.wire.Wire.messages
       ~payload_bytes:(transcript_bytes r.Driver.transcript))

(* Loss recovery shows up in the trace — and first-transmission
   accounting still matches Net_wire exactly. *)
let test_fault_accounting () =
  let session () =
    P3d.make (State.create ~seed:79 ()) ~p1:(Wire.Provider 0) ~p2:(Wire.Provider 1)
      ~host:Wire.Host ~a1:5 ~a2:2
  in
  let fault = Fault.drop_nth [ 1 ] in
  let config = { Endpoint.round_timeout = 0.08; max_retries = 3; linger = 0.5 } in
  let trace = Trace.create () in
  let _q, res = Endpoint.run_session_memory ~config ~fault ~trace (session ()) in
  let report = check_engine_accounting "p3 lossy memory" trace res in
  Alcotest.(check bool) "the drop was traced" true (report.Metrics.faults_dropped >= 1);
  Alcotest.(check bool) "the recovery was traced" true
    (report.Metrics.nacks >= 1 && report.Metrics.retransmits >= 1
    && report.Metrics.timeouts >= 1)

(* --- qcheck: merge is a commutative monoid on shard reports --------------- *)

(* Metrics.merge is only ever called on a flat list of per-shard
   of_trace reports, but its algebra should still be sane: merging is
   associative and commutative, and the empty report is an identity.
   Compared modulo the per-input [shards] table (re-derived by every
   merge) and phase-row order (first-appearance order is intentionally
   input-order dependent).  Wall times are multiples of 0.5 so float
   summation is exact and associativity holds bit-for-bit. *)

let canon (r : Metrics.report) =
  {
    r with
    Metrics.phases =
      List.sort
        (fun (p : Metrics.phase_row) q -> compare p.Metrics.phase q.Metrics.phase)
        r.Metrics.phases;
    shards = [];
  }

let empty_report =
  {
    Metrics.protocol = "links";
    engine = "memory";
    schedule = None;
    parties = 0;
    rounds = 0;
    messages = 0;
    payload_bytes = 0;
    framed_bytes = None;
    transport_bytes = None;
    retransmits = 0;
    nacks = 0;
    timeouts = 0;
    faults_dropped = 0;
    faults_delayed = 0;
    wall_s = 0.;
    phases = [];
    compute = [];
    payload_hist = [];
    shards = [];
  }

let report_arb =
  let open QCheck.Gen in
  let small = int_bound 50 in
  let halves = map (fun k -> 0.5 *. float_of_int k) (int_bound 20) in
  let phase_row =
    oneofl [ "publish"; "core"; "verdict" ] >>= fun phase ->
    small >>= fun rounds ->
    small >>= fun messages ->
    small >>= fun payload_bytes ->
    halves >>= fun wall_s -> return { Metrics.phase; rounds; messages; payload_bytes; wall_s }
  in
  let compute_row =
    oneofl [ "Host"; "P1"; "P2" ] >>= fun party ->
    small >>= fun calls ->
    halves >>= fun total_s ->
    halves >>= fun max_s -> return { Metrics.party; calls; total_s; max_s }
  in
  let hist_bucket =
    oneofl [ 8; 16; 32; 64 ] >>= fun le_bytes ->
    small >>= fun count -> return { Metrics.le_bytes; count }
  in
  let gen =
    small >>= fun rounds ->
    small >>= fun messages ->
    small >>= fun payload_bytes ->
    opt small >>= fun framed_bytes ->
    opt small >>= fun transport_bytes ->
    small >>= fun retransmits ->
    small >>= fun nacks ->
    small >>= fun timeouts ->
    small >>= fun faults_dropped ->
    small >>= fun faults_delayed ->
    halves >>= fun wall_s ->
    int_range 1 5 >>= fun parties ->
    bool >>= fun scheduled ->
    list_size (int_bound 3) phase_row >>= fun phases ->
    list_size (int_bound 3) compute_row >>= fun compute ->
    list_size (int_bound 3) hist_bucket >>= fun payload_hist ->
    return
      {
        empty_report with
        Metrics.parties;
        rounds;
        messages;
        payload_bytes;
        framed_bytes;
        transport_bytes;
        retransmits;
        nacks;
        timeouts;
        faults_dropped;
        faults_delayed;
        wall_s;
        (* One fixed id: shards of one chaos run share their schedule,
           so commutativity of "first Some wins" is only expected when
           every Some agrees. *)
        schedule = (if scheduled then Some "deadbeefcafe" else None);
        phases;
        compute;
        payload_hist;
      }
  in
  QCheck.make ~print:Obs_io.report_to_string gen

let merge_associates =
  QCheck.Test.make ~name:"Metrics.merge associates" ~count:200
    (QCheck.triple report_arb report_arb report_arb) (fun (a, b, c) ->
      let flat = canon (Metrics.merge [ a; b; c ]) in
      canon (Metrics.merge [ Metrics.merge [ a; b ]; c ]) = flat
      && canon (Metrics.merge [ a; Metrics.merge [ b; c ] ]) = flat)

let merge_commutes =
  QCheck.Test.make ~name:"Metrics.merge commutes" ~count:200
    (QCheck.pair report_arb report_arb) (fun (a, b) ->
      canon (Metrics.merge [ a; b ]) = canon (Metrics.merge [ b; a ]))

let merge_identity =
  QCheck.Test.make ~name:"Metrics.merge has an identity" ~count:200 report_arb (fun a ->
      canon (Metrics.merge [ a; empty_report ]) = canon (Metrics.merge [ a ])
      && canon (Metrics.merge [ empty_report; a ]) = canon (Metrics.merge [ a ]))

let () =
  Alcotest.run "spe_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "span re-raises" `Quick test_trace_span_reraises;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "phase_of_round" `Quick test_phase_of_round;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "synthetic aggregation" `Quick test_metrics_synthetic;
          Alcotest.test_case "shard merge" `Quick test_metrics_merge;
        ] );
      ( "merge laws",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 2026 |]))
          [ merge_associates; merge_commutes; merge_identity ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "reads spe-metrics/1" `Quick test_json_reads_v1;
          Alcotest.test_case "json values" `Quick test_json_values;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "protocol 3" `Quick test_p3_accounting;
          Alcotest.test_case "links pipeline" `Slow test_links_accounting;
          Alcotest.test_case "scores pipeline" `Slow test_scores_accounting;
          Alcotest.test_case "central replay" `Quick test_central_accounting;
          Alcotest.test_case "fault recovery" `Quick test_fault_accounting;
        ] );
    ]
