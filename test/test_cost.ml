(* Tests for the analytic cost models: Table 1 and Table 2 totals must
   match the simulated wire exactly, across parameter sweeps. *)

module Model = Spe_cost.Model
module Wire = Spe_mpc.Wire
module Log = Spe_actionlog.Log
module Partition = Spe_actionlog.Partition
module Cascade = Spe_actionlog.Cascade
module Generate = Spe_graph.Generate
module Digraph = Spe_graph.Digraph
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module State = Spe_rng.State

let st () = State.create ~seed:103 ()

let workload ?(n = 30) s =
  let g = Generate.barabasi_albert s ~n ~m:3 in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 20; seeds_per_action = 1; max_delay = 3 } in
  (g, log)

(* --- Table 1 -------------------------------------------------------------------- *)

let table1_for_run ~g ~r ~m ~config ~counters =
  let q = Array.length r.Driver.detail.Protocol4.pairs in
  Model.table1 ~n:(Digraph.n g) ~q ~m
    ~modulus_bits:(Wire.bits_for_int_mod config.Protocol4.modulus)
    ~node_bits:(Wire.bits_for_int_mod (max 2 (Digraph.n g)))
    ~counters:(counters ~n:(Digraph.n g) ~q)

let test_table1_matches_measured_eq1 () =
  let s = st () in
  List.iter
    (fun m ->
      let g, log = workload s in
      let logs = Partition.exclusive s log ~m in
      let config = Protocol4.default_config ~h:3 in
      let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
      let model = table1_for_run ~g ~r ~m ~config ~counters:(fun ~n ~q -> n + q) in
      if not (Model.matches_wire model r.Driver.wire) then
        Alcotest.failf "m=%d: model NM=%d MS=%d, wire NM=%d MS=%d" m model.Model.nm
          model.Model.ms r.Driver.wire.Wire.messages r.Driver.wire.Wire.bits)
    [ 2; 3; 5; 8 ]

let test_table1_matches_measured_eq2 () =
  let s = st () in
  let m = 3 and h = 4 in
  let g, log = workload s in
  let logs = Partition.exclusive s log ~m in
  let w = Spe_influence.Link_strength.uniform_weights ~h in
  let config = { (Protocol4.default_config ~h) with Protocol4.estimator = Protocol4.Eq2 w } in
  let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
  let model = table1_for_run ~g ~r ~m ~config ~counters:(fun ~n ~q -> n + (q * h)) in
  Alcotest.(check bool) "Eq2 model matches wire" true (Model.matches_wire model r.Driver.wire)

let test_table1_totals_formulae () =
  (* NM = m^2 + m + 7 for every m; MS grows ~ m^2. *)
  List.iter
    (fun m ->
      let t = Model.table1 ~n:100 ~q:400 ~m ~modulus_bits:40 ~node_bits:7 ~counters:500 in
      Alcotest.(check int) (Printf.sprintf "NM at m=%d" m) ((m * m) + m + 7) t.Model.nm;
      Alcotest.(check int) "NR" 8 t.Model.nr)
    [ 2; 3; 4; 10; 20 ];
  let t5 = Model.table1 ~n:100 ~q:400 ~m:5 ~modulus_bits:40 ~node_bits:7 ~counters:500 in
  let t10 = Model.table1 ~n:100 ~q:400 ~m:10 ~modulus_bits:40 ~node_bits:7 ~counters:500 in
  Alcotest.(check bool) "MS superlinear in m" true
    (float_of_int t10.Model.ms /. float_of_int t5.Model.ms > 2.5)

let test_table1_share_term_dominates () =
  (* With S large the m^2 share-exchange round dominates MS, matching
     the paper's MS = O(m^2 (n+q) log S) headline. *)
  let t = Model.table1 ~n:1000 ~q:4000 ~m:10 ~modulus_bits:61 ~node_bits:10 ~counters:5000 in
  let share_bits = 10 * 9 * 5000 * 61 in
  Alcotest.(check bool) "share exchange > half of MS" true
    (float_of_int share_bits > 0.5 *. float_of_int t.Model.ms)

(* --- Table 2 -------------------------------------------------------------------- *)

let test_table2_matches_measured () =
  let s = st () in
  List.iter
    (fun m ->
      let g, log = workload s in
      let logs = Partition.exclusive s log ~m in
      let wire = Wire.create () in
      let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
      let r = Protocol6.run s ~wire ~graph:g ~logs config in
      let stats = Wire.stats wire in
      let q = Array.length r.Protocol6.pairs in
      let actions_per_provider =
        Array.map (fun l -> List.length (Log.actions_present l)) logs
      in
      (* The measured key/ciphertext sizes depend on the drawn modulus;
         read them back from a probe encryption. *)
      let z = stats.Wire.bits in
      ignore z;
      (* Instead reconstruct from the model with the actual sizes used:
         recover z from the bundle bytes. *)
      let key_bits =
        (* key broadcast round = round 2; all m messages equal *)
        match List.filter (fun msg -> msg.Wire.round = 2) (Wire.messages wire) with
        | msg :: _ -> msg.Wire.bits
        | [] -> 0
      in
      let total_actions = Array.fold_left ( + ) 0 actions_per_provider in
      let forward =
        List.find (fun msg -> msg.Wire.round = 4) (Wire.messages wire)
      in
      let zbits = forward.Wire.bits / (q * total_actions) in
      let model =
        Model.table2 ~q ~m ~node_bits:(Wire.bits_for_int_mod (max 2 (Digraph.n g)))
          ~key_bits ~ciphertext_bits:zbits ~actions_per_provider ()
      in
      if not (Model.matches_wire model stats) then
        Alcotest.failf "m=%d: model NM=%d MS=%d, wire NM=%d MS=%d" m model.Model.nm
          model.Model.ms stats.Wire.messages stats.Wire.bits)
    [ 2; 3; 5 ]

let test_table2_totals_formulae () =
  List.iter
    (fun m ->
      let actions = Array.make m 5 in
      let t =
        Model.table2 ~q:200 ~m ~node_bits:7 ~key_bits:2048 ~ciphertext_bits:1024
          ~actions_per_provider:actions ()
      in
      Alcotest.(check int) (Printf.sprintf "NM = 3m at m=%d" m) (3 * m) t.Model.nm;
      Alcotest.(check int) "NR = 4" 4 t.Model.nr)
    [ 2; 4; 8 ]

let test_table2_ms_bound () =
  (* MS is dominated by <= 2qzA as the paper states. *)
  let q = 300 and z = 1024 in
  let actions = [| 10; 10; 10; 10 |] in
  let a = 40 in
  let t =
    Model.table2 ~q ~m:4 ~node_bits:7 ~key_bits:2048 ~ciphertext_bits:z
      ~actions_per_provider:actions ()
  in
  let bound = 2 * q * z * a in
  let overhead = (4 * 2 * q * 7) + (4 * 2048) in
  Alcotest.(check bool) "MS <= 2qzA + broadcast overhead" true (t.Model.ms <= bound + overhead)

let test_table2_validation () =
  Alcotest.check_raises "provider count mismatch"
    (Invalid_argument "Model.table2: one action count per provider") (fun () ->
      ignore
        (Model.table2 ~q:10 ~m:3 ~node_bits:5 ~key_bits:64 ~ciphertext_bits:64
           ~actions_per_provider:[| 1; 2 |] ()))

let () =
  Alcotest.run "spe_cost"
    [
      ( "table1",
        [
          Alcotest.test_case "matches measured wire (Eq1)" `Quick test_table1_matches_measured_eq1;
          Alcotest.test_case "matches measured wire (Eq2)" `Quick test_table1_matches_measured_eq2;
          Alcotest.test_case "totals formulae" `Quick test_table1_totals_formulae;
          Alcotest.test_case "share term dominates" `Quick test_table1_share_term_dominates;
        ] );
      ( "table2",
        [
          Alcotest.test_case "matches measured wire" `Quick test_table2_matches_measured;
          Alcotest.test_case "totals formulae" `Quick test_table2_totals_formulae;
          Alcotest.test_case "MS bound" `Quick test_table2_ms_bound;
          Alcotest.test_case "validation" `Quick test_table2_validation;
        ] );
    ]
